"""Stochastic number generators (SNGs).

An SNG turns a binary operand into a stochastic bit-stream.  Two families are
implemented:

* :class:`ComparatorSng` — the conventional design: an n-bit random number
  source feeds a binary comparator; bit ``j`` of the stream is 1 iff
  ``RN_j < X``.  Used with :class:`~repro.core.rng.Lfsr` (PRNG),
  :class:`~repro.core.rng.SobolRng` (QRNG) or
  :class:`~repro.core.rng.SoftwareRng` (the software baseline).

* :class:`SegmentSng` — the *functional model* of the paper's IMSNG: a
  true-random binary sequence (50% ones) is chopped into M-bit segments, each
  segment is interpreted as an M-bit random number, and an MSB-first
  greater-than comparison against the operand produces one stream bit per
  segment.  The bit-exact, cost-counted in-memory execution of the same
  algorithm lives in :mod:`repro.imsc.imsng`; this class provides the
  reference semantics and is what Table I's "IMSNG" column evaluates.

Correlation control (Sec. II-B of the paper): operations such as subtraction,
division, minimum and maximum need *correlated* inputs, which hardware obtains
by sharing one RNG between both operands.  Both SNGs therefore expose
``generate_correlated`` alongside ``generate``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .bitstream import Bitstream
from .encoding import quantize
from .rng import RandomSource, SoftwareRng

__all__ = [
    "BitSource",
    "IdealBitSource",
    "BiasedBitSource",
    "ComparatorSng",
    "SegmentSng",
    "unary_stream",
]


class BitSource:
    """A producer of raw binary sequences with ~50% ones.

    This is the abstraction the paper's IMSNG builds on: any true-RNG that can
    fill memory rows with unbiased random bits.  The ReRAM read-noise TRNG
    (:class:`repro.reram.trng.ReRamTrng`) implements this interface; the ideal
    and biased software sources below are used for analysis.
    """

    def random_bits(self, count: int) -> np.ndarray:
        """Return ``count`` bits as a uint8 array of 0/1."""
        raise NotImplementedError


class IdealBitSource(BitSource):
    """Perfect i.i.d. fair coin flips."""

    def __init__(self, seed: Optional[int] = None):
        self._gen = np.random.default_rng(seed)

    def random_bits(self, count: int) -> np.ndarray:
        return self._gen.integers(0, 2, size=count, dtype=np.uint8)


class BiasedBitSource(BitSource):
    """Coin flips with bias and lag-1 autocorrelation.

    Models an imperfect TRNG: ``P(1) = 0.5 + bias`` and consecutive bits
    repeat with probability ``0.5 + autocorr/2`` (``autocorr`` is the lag-1
    autocorrelation coefficient).  Raw ReRAM read-noise TRNGs exhibit both
    defects before debiasing.
    """

    def __init__(self, bias: float = 0.0, autocorr: float = 0.0,
                 seed: Optional[int] = None):
        if not -0.5 <= bias <= 0.5:
            raise ValueError("bias must lie in [-0.5, 0.5]")
        if not -1.0 <= autocorr <= 1.0:
            raise ValueError("autocorr must lie in [-1, 1]")
        self.bias = bias
        self.autocorr = autocorr
        self._gen = np.random.default_rng(seed)
        self._last: Optional[int] = None

    def random_bits(self, count: int) -> np.ndarray:
        p1 = 0.5 + self.bias
        bits = (self._gen.random(count) < p1).astype(np.uint8)
        if self.autocorr != 0.0 and count > 1:
            # Markov smoothing: with probability |rho| copy the previous bit
            # (or its complement for negative rho).
            rho = self.autocorr
            copy = self._gen.random(count) < abs(rho)
            prev = self._last if self._last is not None else int(bits[0])
            for i in range(count):
                if copy[i]:
                    bits[i] = prev if rho > 0 else 1 - prev
                prev = int(bits[i])
            self._last = prev
        elif count:
            self._last = int(bits[-1])
        return bits


class ComparatorSng:
    """Conventional SNG: n-bit RNG + binary comparator.

    Parameters
    ----------
    source:
        The random-number source; its bit width sets the comparison
        resolution ``n`` (8 in the paper).
    pair_source:
        Second source used for the *uncorrelated* operand of
        :meth:`generate_pair`.  Low-discrepancy generators need this: two
        operands sharing one Sobol dimension are structurally correlated,
        so hardware uses parallel dimensions (Liu & Han) or a second LFSR
        seed.  Defaults to time-sharing ``source``.
    """

    def __init__(self, source: Optional[RandomSource] = None,
                 pair_source: Optional[RandomSource] = None):
        self.source = source if source is not None else SoftwareRng(8)
        self.pair_source = pair_source
        if pair_source is not None and pair_source.bits != self.source.bits:
            raise ValueError("pair_source bit width must match source")

    @property
    def bits(self) -> int:
        return self.source.bits

    def _codes(self, x: np.ndarray) -> np.ndarray:
        return quantize(np.asarray(x, dtype=np.float64), self.bits)

    def generate(self, x: Union[float, np.ndarray], length: int) -> Bitstream:
        """Generate independent streams: fresh random numbers per element.

        Hardware realises this with one RNG per operand (or time-multiplexed
        draws); the streams of distinct elements are mutually uncorrelated.
        """
        codes = self._codes(x)
        flat = np.atleast_1d(codes).ravel()
        rn = self.source.integers(flat.size * length).reshape(flat.size, length)
        bits = rn < flat[:, None]
        shape = np.shape(codes) + (length,) if np.shape(codes) else (length,)
        return Bitstream.from_bool(bits.reshape(shape))

    def generate_correlated(self, x: Union[float, np.ndarray],
                            length: int) -> Bitstream:
        """Generate maximally correlated streams (SCC = +1).

        One shared random-number draw is compared against every element, the
        standard shared-RNG trick: whenever ``RN_j < min(X, Y)`` both streams
        emit 1, so overlap is maximal.
        """
        codes = self._codes(x)
        flat = np.atleast_1d(codes).ravel()
        rn = self.source.integers(length)
        bits = rn[None, :] < flat[:, None]
        shape = np.shape(codes) + (length,) if np.shape(codes) else (length,)
        return Bitstream.from_bool(bits.reshape(shape))


    def generate_pair(self, x: Union[float, np.ndarray],
                      y: Union[float, np.ndarray], length: int,
                      correlated: bool) -> "tuple[Bitstream, Bitstream]":
        """Generate an operand pair, element-wise correlated or independent.

        Unlike :meth:`generate_correlated` (which shares one draw across the
        whole batch), each batch element here gets its *own* random-number
        sequence; ``correlated=True`` shares that per-element sequence
        between the two operands, which is the hardware shared-RNG
        arrangement for subtraction/division/min/max.
        """
        cx = np.atleast_1d(self._codes(x)).ravel()
        cy = np.atleast_1d(self._codes(y)).ravel()
        if cx.size != cy.size:
            raise ValueError("operand batches must have the same size")
        n = cx.size
        if correlated:
            rn = self.source.integers(n * length).reshape(n, length)
            bx = rn < cx[:, None]
            by = rn < cy[:, None]
        elif self.pair_source is not None:
            rnx = self.source.integers(n * length).reshape(n, length)
            rny = self.pair_source.integers(n * length).reshape(n, length)
            bx = rnx < cx[:, None]
            by = rny < cy[:, None]
        else:
            rn = self.source.integers(2 * n * length).reshape(2, n, length)
            bx = rn[0] < cx[:, None]
            by = rn[1] < cy[:, None]
        shape = np.shape(x) + (length,) if np.shape(x) else (length,)
        return (Bitstream.from_bool(bx.reshape(shape)),
                Bitstream.from_bool(by.reshape(shape)))


class SegmentSng:
    """Functional model of the paper's IMSNG (Sec. III-A).

    A true-random bit sequence is split into ``segment_bits``-long segments;
    each segment, read MSB-first, is one M-bit random number ``RN``.  The
    stream bit is the result of the greater-than comparison ``X_M > RN``
    where ``X_M`` is the operand quantised to M bits — exactly the Boolean
    network of Fig. 1(b), whose in-memory execution is modelled in
    :mod:`repro.imsc.imsng`.

    Parameters
    ----------
    bit_source:
        Raw random-bit supplier (ideally 50% ones).
    segment_bits:
        Segment size M (the paper sweeps 5..9).
    operand_bits:
        Input operand precision n (8 in the paper).
    """

    def __init__(self, bit_source: Optional[BitSource] = None,
                 segment_bits: int = 8, operand_bits: int = 8):
        if segment_bits < 1 or segment_bits > 16:
            raise ValueError("segment_bits must be in [1, 16]")
        self.bit_source = bit_source if bit_source is not None else IdealBitSource()
        self.segment_bits = segment_bits
        self.operand_bits = operand_bits

    def _segments_to_ints(self, raw: np.ndarray) -> np.ndarray:
        """Interpret rows of M raw bits as MSB-first integers."""
        m = self.segment_bits
        weights = (1 << np.arange(m - 1, -1, -1)).astype(np.int64)
        return raw.reshape(-1, m).astype(np.int64) @ weights

    def _target_codes(self, x: np.ndarray) -> np.ndarray:
        # Quantise the n-bit operand onto the M-bit comparison grid.  For
        # M < n this drops LSBs (the in-memory comparator only sees M random
        # bits); for M > n the operand gains trailing zeros.
        return quantize(np.asarray(x, dtype=np.float64), self.segment_bits)

    def generate(self, x: Union[float, np.ndarray], length: int) -> Bitstream:
        """Independent streams: a fresh segment per element and bit."""
        codes = self._target_codes(x)
        flat = np.atleast_1d(codes).ravel()
        total_bits = flat.size * length * self.segment_bits
        raw = self.bit_source.random_bits(total_bits)
        rn = self._segments_to_ints(raw).reshape(flat.size, length)
        bits = flat[:, None] > rn
        shape = np.shape(codes) + (length,) if np.shape(codes) else (length,)
        return Bitstream.from_bool(bits.reshape(shape))

    def generate_correlated(self, x: Union[float, np.ndarray],
                            length: int) -> Bitstream:
        """Correlated streams: one shared segment sequence for all elements."""
        codes = self._target_codes(x)
        flat = np.atleast_1d(codes).ravel()
        raw = self.bit_source.random_bits(length * self.segment_bits)
        rn = self._segments_to_ints(raw)
        bits = flat[:, None] > rn[None, :]
        shape = np.shape(codes) + (length,) if np.shape(codes) else (length,)
        return Bitstream.from_bool(bits.reshape(shape))


    def generate_pair(self, x: Union[float, np.ndarray],
                      y: Union[float, np.ndarray], length: int,
                      correlated: bool) -> "tuple[Bitstream, Bitstream]":
        """Operand-pair generation with per-element correlation control."""
        cx = np.atleast_1d(self._target_codes(x)).ravel()
        cy = np.atleast_1d(self._target_codes(y)).ravel()
        if cx.size != cy.size:
            raise ValueError("operand batches must have the same size")
        n = cx.size
        m = self.segment_bits
        if correlated:
            raw = self.bit_source.random_bits(n * length * m)
            rn = self._segments_to_ints(raw).reshape(n, length)
            bx = cx[:, None] > rn
            by = cy[:, None] > rn
        else:
            raw = self.bit_source.random_bits(2 * n * length * m)
            rn = self._segments_to_ints(raw).reshape(2, n, length)
            bx = cx[:, None] > rn[0]
            by = cy[:, None] > rn[1]
        shape = np.shape(x) + (length,) if np.shape(x) else (length,)
        return (Bitstream.from_bool(bx.reshape(shape)),
                Bitstream.from_bool(by.reshape(shape)))


def unary_stream(x: Union[float, np.ndarray], length: int) -> Bitstream:
    """Deterministic unary (thermometer) encoding: first ``k`` bits are 1.

    ``k = round(x * N)``.  Unary streams are maximally correlated with each
    other by construction and carry zero random fluctuation; they are the
    encoding used by unary-coding ReRAM accelerators (Sun et al.).
    """
    arr = np.asarray(x, dtype=np.float64)
    if np.any((arr < 0) | (arr > 1)):
        raise ValueError("unary values must lie in [0, 1]")
    k = np.rint(arr * length).astype(np.int64)
    ramp = np.arange(length, dtype=np.int64)
    return Bitstream.from_bool(ramp < k[..., None])
