"""Polynomial evaluation with stochastic logic (Bernstein form).

Classic SC result (Qian & Riedel): any polynomial with coefficients in
``[0, 1]`` can be computed by a multiplexer whose data inputs are constant
streams at the Bernstein coefficients and whose select is the *sum of n
independent copies* of the input stream.  The probability of exactly ``k``
of ``n`` input copies being 1 is the Bernstein basis ``B_{k,n}(x)``, so the
MUX output is ``sum_k b_k B_{k,n}(x)``.

Used by the gamma-correction image filter in :mod:`repro.apps.filters` —
one of the standard SC image-processing workloads (Li et al. [5]).
"""

from __future__ import annotations

from math import comb
from typing import Sequence, Union

import numpy as np

from .bitstream import Bitstream

__all__ = [
    "bernstein_from_power",
    "bernstein_eval_exact",
    "bernstein_eval_sc",
]


def bernstein_from_power(coeffs: Sequence[float]) -> np.ndarray:
    """Convert power-basis coefficients ``a_0 + a_1 x + ...`` to Bernstein.

    ``b_k = sum_{i<=k} C(k,i)/C(n,i) * a_i`` for degree ``n``.
    """
    a = np.asarray(coeffs, dtype=np.float64)
    n = a.size - 1
    b = np.zeros(n + 1)
    for k in range(n + 1):
        b[k] = sum(comb(k, i) / comb(n, i) * a[i] for i in range(k + 1))
    return b


def bernstein_eval_exact(bernstein: Sequence[float],
                         x: Union[float, np.ndarray]) -> np.ndarray:
    """Reference evaluation of ``sum_k b_k B_{k,n}(x)``."""
    b = np.asarray(bernstein, dtype=np.float64)
    n = b.size - 1
    xv = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(xv, dtype=np.float64)
    for k in range(n + 1):
        out = out + b[k] * comb(n, k) * xv ** k * (1 - xv) ** (n - k)
    return out


def bernstein_eval_sc(bernstein: Sequence[float],
                      x_streams: Sequence[Bitstream],
                      coeff_streams: Sequence[Bitstream]) -> Bitstream:
    """Stochastic Bernstein evaluation.

    Parameters
    ----------
    bernstein:
        Coefficients ``b_0 .. b_n`` (each in [0, 1]); used only for
        validation — the values live in ``coeff_streams``.
    x_streams:
        ``n`` independent streams all encoding the input ``x``.
    coeff_streams:
        ``n + 1`` streams encoding the coefficients, independent of the
        input streams.

    Returns the MUX output stream: at each bit position, the number of '1's
    among the input copies selects which coefficient stream is sampled.
    """
    b = np.asarray(bernstein, dtype=np.float64)
    n = b.size - 1
    if np.any((b < 0) | (b > 1)):
        raise ValueError("Bernstein coefficients must lie in [0, 1]")
    if len(x_streams) != n:
        raise ValueError(f"need {n} input streams, got {len(x_streams)}")
    if len(coeff_streams) != n + 1:
        raise ValueError(
            f"need {n + 1} coefficient streams, got {len(coeff_streams)}")
    length = x_streams[0].length
    count = np.zeros(x_streams[0].bits.shape, dtype=np.int64)
    for s in x_streams:
        if s.length != length:
            raise ValueError("input stream lengths differ")
        count = count + s.bits
    out = np.zeros_like(coeff_streams[0].bits)
    for k in range(n + 1):
        out = np.where(count == k, coeff_streams[k].bits, out)
    return Bitstream(out.astype(np.uint8))
