"""In-memory stochastic-to-binary conversion (Sec. III-C).

Instead of clocking a CMOS counter for N cycles, the paper counts the '1's
of an output bit-stream in a single step: the stream drives per-row voltages
onto a *reference column* whose cells are all pre-programmed to LRS; the
accumulated bitline current is proportional to the popcount and is digitised
by the per-mat 8-bit ADC.

The model samples per-cell LRS conductances (with read noise) so the analog
count inherits device variability, then pushes the current through the
:class:`~repro.reram.adc.Adc`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.bitstream import Bitstream
from ..reram.adc import Adc, AdcParams, ISAAC_ADC
from ..reram.device import DEFAULT_DEVICE, DeviceParams

__all__ = ["InMemoryStoB"]


class InMemoryStoB:
    """Reference-column + ADC stochastic-to-binary converter.

    Parameters
    ----------
    params:
        Device model supplying LRS statistics and the read voltage.
    adc_params:
        ADC characteristics (defaults to the ISAAC-style 8-bit SAR).
    ideal_cells:
        If True, reference cells are noiseless (isolates ADC effects).
    """

    def __init__(self, params: DeviceParams = DEFAULT_DEVICE,
                 adc_params: AdcParams = ISAAC_ADC,
                 ideal_cells: bool = False,
                 rng: Union[np.random.Generator, int, None] = None):
        self.params = params
        self.ideal_cells = ideal_cells
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self._adc_params = adc_params
        self._adc: Optional[Adc] = None
        self._adc_length = -1

    def _adc_for(self, length: int) -> Adc:
        if self._adc is None or self._adc_length != length:
            full_scale = length * self.params.read_voltage * self.params.g_lrs
            self._adc = Adc(self._adc_params, full_scale, self._gen)
            self._adc_length = length
        return self._adc

    def column_current(self, stream: Bitstream) -> np.ndarray:
        """Accumulated reference-column current per stream (amperes)."""
        bits = stream.bits.astype(np.float64)
        v = self.params.read_voltage
        if self.ideal_cells:
            g = self.params.g_lrs
            return v * g * bits.sum(axis=-1)
        # Per-cell programmed conductance (LRS lognormal) plus read noise.
        ln_g = -np.log(self.params.lrs_mean)
        sigma = np.sqrt(self.params.lrs_sigma ** 2
                        + self.params.read_noise_sigma ** 2)
        g = np.exp(self._gen.normal(ln_g, sigma, bits.shape))
        return v * np.sum(bits * g, axis=-1)

    def convert(self, stream: Bitstream) -> np.ndarray:
        """Recovered probabilities in ``[0, 1]`` (one per stream)."""
        adc = self._adc_for(stream.length)
        current = self.column_current(stream)
        return adc.to_fraction(current)

    @property
    def conversions(self) -> int:
        """ADC conversions performed so far (for cost accounting)."""
        return 0 if self._adc is None else self._adc.conversions
