"""In-memory stochastic-to-binary conversion (Sec. III-C).

Instead of clocking a CMOS counter for N cycles, the paper counts the '1's
of an output bit-stream in a single step: the stream drives per-row voltages
onto a *reference column* whose cells are all pre-programmed to LRS; the
accumulated bitline current is proportional to the popcount and is digitised
by the per-mat 8-bit ADC.

Cell models
-----------
``cell_model`` selects how device variability enters the accumulated
current (mirroring the engine's ``fault_domain`` oracle/fast-path split):

* ``'per-bit'`` (default) — the historical reference implementation: every
  ``(stream, position)`` cell gets an independent lognormal LRS draw (with
  read noise folded into the shape parameter) and the current is the
  bit-by-bit weighted sum.  This is the conformance oracle; it unpacks the
  payload and costs ``n_streams x N`` normal draws per conversion.
* ``'column'`` — the batched word-domain model: each stream in a batch maps
  to a reference column whose *realised mean* LRS conductance is drawn once
  per ``(length, batch-width)`` and cached (the hardware re-reads the same
  programmed column, so programming variability is frozen per column).  The
  current is then computed from the packed popcount ``k`` as

      I = V * (k * g_col * mu_read + eps),   eps ~ N(0, s(k))

  where ``s(k)`` is variance-matched so the *marginal* conversion error has
  exactly the per-bit model's mean and variance: ``s(k)^2 = k * var(G) -
  (k^2 / N) * var(P) * mu_read^2`` with ``G = P * R`` the per-read
  conductance, ``P`` the programmed (lognormal) part and ``R`` the
  multiplicative read noise.  Nothing unpacks: the only per-conversion work
  is a popcount over the packed payload plus one normal draw per stream.
  ``tests/test_imsc.py`` asserts mean/variance agreement with the oracle.

Both models push the current through the same :class:`~repro.reram.adc.Adc`.
ADCs are kept in a per-length map so mixed-length workloads accumulate into
one ``conversions`` total instead of silently resetting the counter when
the stream length changes.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple, Union

import numpy as np

from ..core.bitstream import Bitstream
from ..core.streambatch import StreamBatch
from ..reram.adc import Adc, AdcParams, ISAAC_ADC
from ..reram.device import DEFAULT_DEVICE, DeviceParams

__all__ = ["InMemoryStoB", "CELL_MODELS"]

CELL_MODELS = ("per-bit", "column")

StreamLike = Union[Bitstream, StreamBatch]


class InMemoryStoB:
    """Reference-column + ADC stochastic-to-binary converter.

    Parameters
    ----------
    params:
        Device model supplying LRS statistics and the read voltage.
    adc_params:
        ADC characteristics (defaults to the ISAAC-style 8-bit SAR).
    ideal_cells:
        If True, reference cells are noiseless (isolates ADC effects).
    cell_model:
        'per-bit' (default) samples an independent conductance for every
        stream bit — the conformance oracle.  'column' computes the current
        from the packed popcount with cached per-column draws and a
        variance-matched noise term; statistically equivalent, never
        unpacks (see module docs).
    """

    def __init__(self, params: DeviceParams = DEFAULT_DEVICE,
                 adc_params: AdcParams = ISAAC_ADC,
                 ideal_cells: bool = False,
                 rng: Union[np.random.Generator, int, None] = None,
                 cell_model: str = "per-bit"):
        if cell_model not in CELL_MODELS:
            raise ValueError(
                f"cell_model must be one of {CELL_MODELS}, got {cell_model!r}")
        self.params = params
        self.ideal_cells = ideal_cells
        self.cell_model = cell_model
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self._adc_params = adc_params
        # One ADC per stream length: full scale depends on N, and a shared
        # map keeps the conversions counter accumulating across lengths.
        self._adcs: Dict[int, Adc] = {}
        # cell_model='column': realised column-mean conductances, keyed by
        # (length, batch width) — the programmed column is drawn once and
        # re-read by every subsequent conversion of the same shape.
        self._columns: Dict[Tuple[int, int], np.ndarray] = {}

    def _adc_for(self, length: int) -> Adc:
        adc = self._adcs.get(length)
        if adc is None:
            full_scale = length * self.params.read_voltage * self.params.g_lrs
            adc = Adc(self._adc_params, full_scale, self._gen)
            self._adcs[length] = adc
        return adc

    # ------------------------------------------------------------------
    # Lognormal moments of the per-read cell conductance G = P * R
    # ------------------------------------------------------------------
    def _moments(self) -> Tuple[float, float, float, float]:
        """``(mu_p, var_p, mu_r, var_g)`` of the LRS conductance model."""
        g = self.params.g_lrs
        sp2 = self.params.lrs_sigma ** 2
        sr2 = self.params.read_noise_sigma ** 2
        s2 = sp2 + sr2
        mu_p = g * math.exp(sp2 / 2.0)
        var_p = g * g * math.exp(sp2) * (math.exp(sp2) - 1.0)
        mu_r = math.exp(sr2 / 2.0)
        var_g = g * g * math.exp(s2) * (math.exp(s2) - 1.0)
        return mu_p, var_p, mu_r, var_g

    def _column_means(self, length: int, width: int) -> np.ndarray:
        """Cached realised mean programmed conductance per reference column.

        The column's N cells are programmed once; its realised average is
        (by the CLT) a single Gaussian draw per column — ``width`` draws
        instead of ``width x N``.
        """
        key = (length, width)
        cols = self._columns.get(key)
        if cols is None:
            mu_p, var_p, _, _ = self._moments()
            cols = self._gen.normal(mu_p, math.sqrt(var_p / length), width)
            # A realised mean conductance is physically positive; the
            # Gaussian tail below zero is astronomically unlikely for any
            # sane (sigma, N) but clip defensively.
            np.clip(cols, mu_p * 1e-3, None, out=cols)
            self._columns[key] = cols
        return cols

    # ------------------------------------------------------------------
    # Currents
    # ------------------------------------------------------------------
    def column_current(self, stream: StreamLike) -> np.ndarray:
        """Accumulated reference-column current per stream (amperes).

        This is the per-bit oracle path (plus the noiseless ``ideal_cells``
        shortcut, which needs only the popcount); ``cell_model='column'``
        conversions go through :meth:`convert` directly.
        """
        v = self.params.read_voltage
        if self.ideal_cells:
            g = self.params.g_lrs
            return v * g * stream.popcount().astype(np.float64)
        # Per-cell programmed conductance (LRS lognormal) plus read noise.
        bits = stream.bits.astype(np.float64)
        ln_g = -np.log(self.params.lrs_mean)
        sigma = np.sqrt(self.params.lrs_sigma ** 2
                        + self.params.read_noise_sigma ** 2)
        g = np.exp(self._gen.normal(ln_g, sigma, bits.shape))
        return v * np.sum(bits * g, axis=-1)

    def _batch_current(self, popcount: np.ndarray, length: int) -> np.ndarray:
        """Column-model current from popcounts alone (no unpack).

        Mean ``k * g_col * mu_r`` uses the cached realised column mean; the
        additive Gaussian is variance-matched so the marginal distribution
        agrees with the per-bit oracle (see module docs).
        """
        v = self.params.read_voltage
        k = np.atleast_1d(np.asarray(popcount, dtype=np.float64)).ravel()
        width = k.size
        mu_p, var_p, mu_r, var_g = self._moments()
        cols = self._column_means(length, width)
        noise_var = k * var_g - (k * k / length) * var_p * mu_r * mu_r
        np.clip(noise_var, 0.0, None, out=noise_var)
        eps = self._gen.normal(0.0, 1.0, width) * np.sqrt(noise_var)
        current = v * (k * cols * mu_r + eps)
        shape = np.shape(popcount)
        return current.reshape(shape) if shape else current[0]

    def convert(self, stream: StreamLike) -> np.ndarray:
        """Recovered probabilities in ``[0, 1]`` (one per stream).

        Accepts a :class:`~repro.core.bitstream.Bitstream` or a
        :class:`~repro.core.streambatch.StreamBatch`; under
        ``cell_model='column'`` (or ``ideal_cells``) only the backend-routed
        popcount touches the payload, so packed batches never unpack.
        """
        adc = self._adc_for(stream.length)
        if self.cell_model == "column" and not self.ideal_cells:
            current = self._batch_current(stream.popcount(), stream.length)
        else:
            current = self.column_current(stream)
        return adc.to_fraction(current)

    @property
    def conversions(self) -> int:
        """Total ADC conversions performed so far, across all stream lengths."""
        return sum(adc.conversions for adc in self._adcs.values())
