"""In-memory stochastic number generation (IMSNG) on the array model.

Executes the greater-than network of :mod:`repro.imsc.gtnetwork` on an
:class:`~repro.reram.controller.ArrayController` with the exact command
structure of the paper's two design points:

* **IMSNG-naive** — intermediate XOR results are forwarded through the
  bitline-voltage feedback path, but the two running state rows (the GT
  accumulator and the flag) are written back each bit position:
  ``5n`` sensing steps + ``2n`` row writes per conversion.
* **IMSNG-opt** — the flag bit lives in the L1 latch and the two ANDs that
  involve it become predicated sensing; the GT accumulator rides in L0:
  ``3n`` sensing steps + ``n`` latch cycles + one final row write of the
  produced SBS.

The array layout follows Fig. 1a: ``n`` rows of operand bit-planes (the
operand bit is broadcast along the row), ``M`` rows of in-memory true-random
bits (each *column* holds one M-bit random number, so one conversion yields
one stream bit per column), two work rows and the SBS destination rows.

Faults can be injected per sensing step at the derived scouting-logic rates,
making this the bit-exact reference for the vectorised engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.encoding import quantize
from ..core.sng import BitSource, IdealBitSource
from ..reram.array import CrossbarArray
from ..reram.controller import ArrayController, Command
from ..reram.faults import BitFlipInjector, GateFaultRates

__all__ = ["ImsngUnit", "ConversionResult"]


@dataclass
class ConversionResult:
    """Output of one in-memory conversion."""

    bits: np.ndarray                      # the produced SBS (one bit/column)
    commands: List[Command]               # commands issued by the comparison
    load_commands: List[Command]          # operand + random-fill commands


class ImsngUnit:
    """One mat performing in-memory SBS generation.

    Parameters
    ----------
    n_bits:
        Operand precision n (8 in the paper).
    segment_bits:
        Random-number width M (the paper sweeps 5..9).
    width:
        Columns per row = stream bits produced per conversion.
    mode:
        'naive' or 'opt' (see module docstring).
    bit_source:
        True-random bit supplier (e.g. :class:`repro.reram.trng.ReRamTrng`).
    fault_rates:
        Optional per-gate fault rates; ``None`` executes ideally.
    """

    def __init__(self, n_bits: int = 8, segment_bits: int = 8,
                 width: int = 256, mode: str = "opt",
                 bit_source: Optional[BitSource] = None,
                 fault_rates: Optional[GateFaultRates] = None,
                 rng: Union[np.random.Generator, int, None] = None):
        if mode not in ("naive", "opt"):
            raise ValueError("mode must be 'naive' or 'opt'")
        self.n_bits = n_bits
        self.segment_bits = segment_bits
        self.width = width
        self.mode = mode
        self.bit_source = bit_source if bit_source is not None else IdealBitSource()
        gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._injector = (BitFlipInjector(fault_rates, gen)
                          if fault_rates is not None else None)
        rows = max(n_bits, segment_bits) + segment_bits + 4
        array = CrossbarArray(rows, width, rng=gen)
        regions = {
            "a": max(n_bits, segment_bits),
            "rn": segment_bits,
            "work": 2,
            "sbs": 2,
        }
        self.ctl = ArrayController(array, regions)

    # ------------------------------------------------------------------
    # Data staging
    # ------------------------------------------------------------------
    def load_operand(self, value: float) -> List[Command]:
        """Broadcast the operand's M-bit code into the operand bit-planes.

        Row ``a[0]`` holds the MSB.  Codes are on the M-bit comparison grid
        (the comparator sees M random bits).
        """
        start = len(self.ctl.trace)
        code = int(quantize(float(value), self.segment_bits))
        m = self.segment_bits
        for i in range(m):
            bit = (code >> (m - 1 - i)) & 1
            row = self.ctl.row("a", i)
            self.ctl.write_row(row, np.full(self.width, bit, dtype=np.uint8))
        return self.ctl.trace[start:]

    def load_random(self) -> List[Command]:
        """Fill the random region with fresh true-random bit-planes.

        The paper treats the ReRAM TRNG as a single-step operation that
        deposits random sequences directly into the array; each of the M
        rows costs one row write.
        """
        start = len(self.ctl.trace)
        for i in range(self.segment_bits):
            bits = self.bit_source.random_bits(self.width)
            self.ctl.write_row(self.ctl.row("rn", i), bits)
        return self.ctl.trace[start:]

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def _flip(self, bits: np.ndarray, gate: str) -> np.ndarray:
        if self._injector is None:
            return bits
        return self._injector.inject(bits, gate)

    def compare(self) -> ConversionResult:
        """Run the greater-than scan over the staged operand and randoms."""
        start = len(self.ctl.trace)
        if self.mode == "naive":
            bits = self._compare_naive()
        else:
            bits = self._compare_opt()
        return ConversionResult(bits=bits,
                                commands=self.ctl.trace[start:],
                                load_commands=[])

    def _row_bits(self, region: str, offset: int) -> np.ndarray:
        return self.ctl.array.states[self.ctl.row(region, offset)].copy()

    def _compare_naive(self) -> np.ndarray:
        ctl = self.ctl
        gt_row = ctl.row("work", 0)
        flag_row = ctl.row("work", 1)
        ctl.write_row(gt_row, np.zeros(self.width, dtype=np.uint8))
        ctl.write_row(flag_row, np.ones(self.width, dtype=np.uint8))
        for i in range(self.segment_bits):
            a_i = self._row_bits("a", i)
            rn_i = self._row_bits("rn", i)
            diff = self._flip(ctl.sl_op("xor", [ctl.row("a", i),
                                                ctl.row("rn", i)]), "xor")
            # diff is forwarded through the feedback path; the AND with the
            # operand row is still a sensing step on the array.
            t = self._flip(a_i & diff, "and")
            ctl.trace.append(Command("sl", gate="and",
                                     rows=(ctl.row("a", i),),
                                     cells=self.width))
            t = self._flip(t & self._row_bits("work", 1), "and")
            ctl.trace.append(Command("sl", gate="and", rows=(flag_row,),
                                     cells=self.width))
            gt = self._flip(self._row_bits("work", 0) | t, "or")
            ctl.trace.append(Command("sl", gate="or", rows=(gt_row,),
                                     cells=self.width))
            ctl.write_row(gt_row, gt)
            flag = self._flip(self._row_bits("work", 1) & (1 - diff), "and")
            ctl.trace.append(Command("sl", gate="and", rows=(flag_row,),
                                     cells=self.width))
            ctl.write_row(flag_row, flag)
        return self._row_bits("work", 0)

    def _compare_opt(self) -> np.ndarray:
        ctl = self.ctl
        latch = ctl.latches
        latch.load_data(np.zeros(self.width, dtype=np.uint8))   # GT in L0
        latch.load_flag(np.ones(self.width, dtype=np.uint8))    # FFlag in L1
        for i in range(self.segment_bits):
            a_i = self._row_bits("a", i)
            diff = self._flip(ctl.sl_op("xor", [ctl.row("a", i),
                                                ctl.row("rn", i)]), "xor")
            t = self._flip(a_i & diff, "and")
            ctl.trace.append(Command("sl", gate="and",
                                     rows=(ctl.row("a", i),),
                                     cells=self.width))
            # Predicated sensing: AND with the flag happens inside the
            # latch pair — no array access, no fault site.
            t = t & latch.flag
            latch.update_flag_and_not(diff)
            ctl.latch_op()
            gt = self._flip(latch.data | t, "or")
            ctl.trace.append(Command("sl", gate="or", rows=(), cells=self.width))
            latch.load_data(gt)
        # One write drains the accumulated SBS from L0 into the SBS region.
        ctl.write_row(ctl.row("sbs", 0), latch.data)
        return latch.data.copy()

    def convert(self, value: float) -> ConversionResult:
        """Full conversion: stage operand + randoms, then compare."""
        load = []
        load.extend(self.load_operand(value))
        load.extend(self.load_random())
        result = self.compare()
        return ConversionResult(bits=result.bits, commands=result.commands,
                                load_commands=load)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def expected_counts(self) -> Dict[str, int]:
        """Closed-form command counts for one comparison (Sec. III-A)."""
        m = self.segment_bits
        if self.mode == "naive":
            return {"sense": 5 * m, "write": 2 * m + 2, "latch": 0}
        return {"sense": 3 * m, "write": 1, "latch": m}
