"""The in-memory greater-than comparison network (Fig. 1b).

To convert a true-random sequence into a stochastic bit-stream, the paper
compares the n-bit operand ``A`` against each M-bit in-memory random number
``RN`` with an MSB-first bitwise scan: at the first position where the two
differ (``A_i XOR RN_i = 1``) the comparison resolves to ``A_i``.  The scan
is expressed with a running *flag* bit ``FFlag`` ("all more-significant bits
were equal so far"):

.. code-block:: text

    FFlag := 1; GT := 0
    for i = MSB .. LSB:
        diff_i  = A_i XOR RN_i
        GT     |= A_i AND diff_i AND FFlag
        FFlag  &= NOT diff_i

Per bit position that is one XOR, two ANDs, one OR and one flag-AND — the
"5n operations" of Sec. III-A.  :func:`build_gt_xag` constructs the network
as a :class:`~repro.logic.xag.Xag` (the paper's representation for logic
optimisation); :func:`gt_reference` provides the bit-parallel numpy oracle
used in tests and in the vectorised engine.
"""

from __future__ import annotations


import numpy as np

from ..logic.xag import Xag

__all__ = ["build_gt_xag", "gt_reference", "GT_OPS_PER_BIT"]

# Sensing steps per bit position in the un-optimised network.
GT_OPS_PER_BIT = 5


def build_gt_xag(n_bits: int) -> Xag:
    """Construct the MSB-first ``A > B`` comparator as a XAG.

    Inputs are named ``a{i}`` and ``b{i}`` with ``i = n_bits-1`` the MSB;
    the single output is named ``gt``.
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    xag = Xag()
    a = {i: xag.add_input(f"a{i}") for i in range(n_bits - 1, -1, -1)}
    b = {i: xag.add_input(f"b{i}") for i in range(n_bits - 1, -1, -1)}
    flag = xag.constant(True)
    gt = xag.constant(False)
    for i in range(n_bits - 1, -1, -1):
        diff = xag.add_xor(a[i], b[i])
        term = xag.add_and(xag.add_and(a[i], diff), flag)
        gt = xag.add_or(gt, term)
        flag = xag.add_and(flag, xag.add_not(diff))
    xag.add_output(gt, "gt")
    return xag


def gt_reference(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    """Bit-parallel oracle for the comparison ``A > B``.

    Parameters
    ----------
    a_bits, b_bits:
        Bit-plane arrays of shape ``(n_bits, ...)`` with index 0 the MSB
        (matching the row layout in the ReRAM array, Fig. 1a).

    Returns
    -------
    uint8 array of the trailing shape: 1 where ``A > B``.
    """
    a = np.asarray(a_bits, dtype=np.uint8)
    b = np.asarray(b_bits, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError("operand bit-plane shapes differ")
    n = a.shape[0]
    flag = np.ones(a.shape[1:], dtype=np.uint8)
    gt = np.zeros(a.shape[1:], dtype=np.uint8)
    for i in range(n):
        diff = a[i] ^ b[i]
        gt |= a[i] & diff & flag
        flag &= 1 - diff
    return gt
