"""The all-in-memory stochastic computing engine.

:class:`InMemorySCEngine` is the vectorised, application-scale model of the
paper's accelerator.  It executes every SC stage with the *semantics and
fault sites* of the in-memory implementation:

* **SNG** — the IMSNG greater-than scan over TRNG bit-planes, evaluated
  bit-parallel over whole operand batches; every scouting-logic sensing step
  is a fault-injection site at its gate's derived rate.  IMSNG-opt has fewer
  fault sites than IMSNG-naive because the flag ANDs move into the (ideal)
  latch path — an effect the ablation benches expose.
* **SC ops** — one faulty sensing step per bulk-bitwise op; CORDIV division
  runs its sequential latch recurrence with per-cycle fault sites.
* **S-to-B** — the reference-column/ADC path of
  :class:`~repro.imsc.stob.InMemoryStoB`.  ``cell_model`` selects its
  device-variability model: ``'per-bit'`` (default) is the historical
  per-cell sampling oracle; ``'column'`` computes the column current from
  the packed popcount with cached per-column draws and a variance-matched
  noise term — statistically equivalent, never unpacks, and orders of
  magnitude cheaper on batched readouts (see :mod:`repro.imsc.stob`).

Every stage also books its cost into an :class:`~repro.energy.model
.EnergyLedger`, so an application run yields quality *and* latency/energy
from one execution.  The engine duck-types the SNG interface
(``generate`` / ``generate_pair`` / ``generate_correlated``) so it drops
into :class:`~repro.core.flow.ScFlow` and the Monte-Carlo harness
unchanged.

Execution domains and the seeding contract
------------------------------------------
All stream state flows through :class:`~repro.core.streambatch.StreamBatch`
payloads in the active backend's layout, so under the ``packed`` backend
the whole engine — generation, logic ops, fault injection, the CORDIV
scan — runs on uint64 words without ever unpacking (the analog S-to-B
model joins them under ``cell_model='column'``; the per-bit cell model is
the one deliberate exception, sampling per-cell conductances in the bit
domain as the conformance oracle).  :meth:`InMemorySCEngine.to_binary`
accepts :class:`~repro.core.streambatch.StreamBatch` payloads natively, so
batched pipelines read out without a ``Bitstream`` round-trip.

``fault_domain`` selects how faults are *applied*:

* ``'word'`` (default) — fault masks are sampled in the bit domain (so the
  RNG consumption is identical to the oracle) but packed once and XOR-ed
  into the payload at word granularity; stream data never unpacks.
* ``'bit'`` — the historical per-bit reference implementation: the IMSNG
  greater-than scan, bit-flip application and the CORDIV recurrence all run
  one uint8 byte per bit.  This is the conformance oracle (and the
  benchmark baseline): for the same seed it is bit-identical to ``'word'``
  under every backend, which ``tests/test_backend_equivalence.py`` asserts.

``fault_sampling`` selects how fault masks are *sampled*:

* ``'dense'`` (default) — every flip site draws one full ``shape``-sized
  uniform array per sensing step (one Bernoulli trial per bit).  This is
  the bit-exact oracle: for a given seed its output is reproducible across
  releases and identical between ``fault_domain='word'`` and ``'bit'``.
* ``'sparse'`` — each flip site draws its flip *count* from
  ``Binomial(n_sites, p)`` and scatters that many uniformly chosen site
  indices straight into the payload (:meth:`StreamBatch.flip_at` — bit
  index → (word, bit) shifts, no full-size uniform array, no unpack).
  The per-site flip probability and the mean/variance of the flip count
  are exactly those of the dense Bernoulli model, so faulty statistics
  (per-gate flip rates, faulty-app MSE) conform within Monte-Carlo noise —
  but the RNG draw sequence differs, so sparse runs are *statistically*
  rather than bit-wise comparable to dense runs.  At the paper's per-gate
  rates (~1e-3) this removes virtually all fault-model memory traffic;
  ``benchmarks/bench_faults.py`` guards the speedup.  Sparse sampling
  requires ``fault_domain='word'`` (the per-bit oracle is dense by
  definition).

The CORDIV/JK read flips follow the same axis: dense word-domain division
draws its two read masks per stream position (latch order, RNG-identical
to the oracle), sparse division draws one Binomial per operand stream and
scatters the read upsets directly into the packed payload.

RNG draw order is part of the engine's contract — two engines built with
the same seed produce bit-identical streams regardless of backend or fault
domain.  Specifically: TRNG planes are drawn before any fault mask; each
sensing step draws one mask of the full bit shape (``batch + (length,)``);
the faulty CORDIV draws its two read masks *per stream position*
(``x_i`` then ``y_i``), matching the latch-by-latch sensing order.  Fault-
free generation skips the per-step scan entirely and evaluates the
equivalent MSB-first comparison ``X > RN`` in one vectorised step — a pure
optimisation that consumes no additional randomness.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..core.bitstream import Bitstream
from ..core.encoding import quantize
from ..core.streambatch import StreamBatch
from ..core import ops as scops
from ..energy.model import EnergyLedger
from ..energy.params import DEFAULT_RERAM_COSTS, ReRamStepCosts
from ..reram.device import DEFAULT_DEVICE, DeviceParams
from ..reram.faults import GateFaultRates
from .cost import imsng_conversion_cost, sc_op_cost, stob_cost
from .stob import InMemoryStoB

__all__ = ["InMemorySCEngine", "EngineFactory"]

_OP_GATES = {
    "multiplication": "and",
    "scaled_addition": "maj3",
    "approx_addition": "or",
    "abs_subtraction": "xor",
    "minimum": "and",
    "maximum": "or",
}


class InMemorySCEngine:
    """Vectorised in-ReRAM SC engine with fault injection and cost ledger.

    Parameters
    ----------
    segment_bits:
        IMSNG random-number width M (paper default 8).
    mode:
        'opt' (default) or 'naive' IMSNG variant.
    fault_rates:
        Per-gate scouting-logic error rates; ``None`` runs fault-free
        (Table IV's ✗ columns).
    trng_bias / trng_autocorr:
        Imperfections of the in-memory TRNG bit source.
    device / costs:
        Device parameters (for the S-to-B analog path) and step costs.
    ideal_stob:
        Bypass the ADC path with an exact popcount (for ablation).
    fault_domain:
        'word' applies fault masks in the backend's word layout; 'bit' is
        the per-bit conformance oracle (see module docs).  Both are
        bit-identical for the same seed.
    fault_sampling:
        'dense' draws one Bernoulli trial per bit per sensing step — the
        bit-exact oracle; 'sparse' draws the flip count from
        ``Binomial(n_sites, p)`` and scatters the sites directly into the
        payload — statistically conformant (same flip-rate mean/variance)
        and much faster at the paper's low gate rates, but not
        bit-reproducible against 'dense'.  Requires ``fault_domain='word'``.
    cell_model:
        S-to-B device-variability model: 'per-bit' (the oracle —
        bit-reproducible against earlier releases) or 'column' (batched
        popcount-based readout, statistically equivalent and much faster).
    config:
        A :class:`repro.config.RunConfig` supplying defaults for
        ``fault_domain`` / ``fault_sampling`` / ``cell_model``.  Explicit
        kwargs override the config; with neither, the bare engine stays
        the paper-faithful oracle ('word' / 'dense' / 'per-bit') so
        direct engine construction keeps reproducing the pinned goldens
        regardless of the package-level fast defaults.  Selecting
        ``fault_domain='bit'`` without naming a sampling mode coerces a
        config-level 'sparse' down to 'dense' (the per-bit oracle is
        dense by definition).
    """

    #: Bare-construction resolution when neither a kwarg nor a config
    #: names the axis.  Deliberately the *oracle* values — the package
    #: fast defaults live in ``RunConfig``, not here — so historical
    #: bit-exact pins on directly-built engines survive releases.
    ORACLE_DEFAULTS = {"fault_domain": "word", "fault_sampling": "dense",
                      "cell_model": "per-bit"}

    def __init__(self, segment_bits: int = 8, mode: str = "opt",
                 fault_rates: Optional[GateFaultRates] = None,
                 trng_bias: float = 0.004, trng_autocorr: float = 0.0,
                 device: DeviceParams = DEFAULT_DEVICE,
                 costs: ReRamStepCosts = DEFAULT_RERAM_COSTS,
                 ideal_stob: bool = False,
                 rng: Union[np.random.Generator, int, None] = None,
                 fault_domain: Optional[str] = None,
                 fault_sampling: Optional[str] = None,
                 cell_model: Optional[str] = None,
                 config=None):
        # Resolve the model axes: explicit kwarg > config field > oracle
        # default.  The config is duck-typed (any object with the three
        # attributes) so this module never imports repro.config.
        if config is not None:
            base = {"fault_domain": config.fault_domain,
                    "fault_sampling": config.fault_sampling,
                    "cell_model": config.cell_model}
        else:
            base = dict(self.ORACLE_DEFAULTS)
        explicit = {k: v for k, v in (("fault_domain", fault_domain),
                                      ("fault_sampling", fault_sampling),
                                      ("cell_model", cell_model))
                    if v is not None}
        base.update(explicit)
        if (base["fault_domain"] == "bit"
                and "fault_sampling" not in explicit
                and base["fault_sampling"] == "sparse"):
            base["fault_sampling"] = "dense"
        fault_domain = base["fault_domain"]
        fault_sampling = base["fault_sampling"]
        cell_model = base["cell_model"]
        if mode not in ("naive", "opt"):
            raise ValueError("mode must be 'naive' or 'opt'")
        if fault_domain not in ("word", "bit"):
            raise ValueError("fault_domain must be 'word' or 'bit'")
        if fault_sampling not in ("dense", "sparse"):
            raise ValueError("fault_sampling must be 'dense' or 'sparse'")
        if fault_sampling == "sparse" and fault_domain == "bit":
            raise ValueError("fault_sampling='sparse' requires "
                             "fault_domain='word' (the per-bit oracle is "
                             "dense by definition)")
        self.segment_bits = segment_bits
        self.mode = mode
        self.fault_rates = fault_rates
        self.trng_bias = trng_bias
        self.trng_autocorr = trng_autocorr
        self.device = device
        self.costs = costs
        self.ideal_stob = ideal_stob
        self.fault_domain = fault_domain
        self.fault_sampling = fault_sampling
        self.cell_model = cell_model
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self._stob = InMemoryStoB(device, rng=self._gen,
                                  cell_model=cell_model)
        self.ledger = EnergyLedger()

    # ------------------------------------------------------------------
    # Fault helpers
    # ------------------------------------------------------------------
    def _rate(self, gate: str) -> float:
        if self.fault_rates is None:
            return 0.0
        return self.fault_rates.for_gate(gate)

    def _flip(self, bits: np.ndarray, gate: str) -> np.ndarray:
        """Per-bit oracle: flip each bit of an unpacked array at the gate rate."""
        p = self._rate(gate)
        if p <= 0.0:
            return bits
        mask = (self._gen.random(bits.shape) < p).astype(np.uint8)
        return bits ^ mask

    def _flip_batch(self, sb: StreamBatch, gate: str) -> StreamBatch:
        """Word-domain flip: dense masks draw the oracle's full-shape
        uniform array; sparse sampling scatters a Binomial flip count."""
        p = self._rate(gate)
        if p <= 0.0:
            return sb
        if self.fault_sampling == "sparse":
            return self._flip_sparse(sb, p)
        return sb.flip(self._gen.random(sb.shape) < p)

    def _flip_sparse(self, sb: StreamBatch, p: float) -> StreamBatch:
        """Sparse flip: Binomial count + uniformly chosen distinct sites.

        Statistically identical to per-site Bernoulli flips (the site count
        is Binomial(n, p) and sites form a uniform random subset, so the
        per-site flip probability is exactly ``p`` and the count variance
        exactly ``n p (1-p)``), but the cost scales with the *expected
        number of flips* instead of the number of sites.
        """
        n_sites = int(np.prod(sb.shape))
        k = int(self._gen.binomial(n_sites, p))
        if k == 0:
            return sb
        return sb.flip_at(self._flip_sites(n_sites, k))

    @staticmethod
    def _dedupe(sites: np.ndarray) -> np.ndarray:
        # Not np.unique: numpy >= 2.3 routes integer unique through a
        # hash table that measures ~14x slower than sort-and-mask at the
        # tens-of-thousands-of-sites scale the sparse sampler draws (it
        # dominated the first sparse profile).
        sites = np.sort(sites)
        return sites[np.concatenate(([True], sites[1:] != sites[:-1]))]

    def _flip_sites(self, n_sites: int, k: int) -> np.ndarray:
        """A uniformly random k-subset of sites by rejection of duplicates.

        At sparse-regime rates duplicates are vanishingly rare (expected
        collisions ~ k^2 / n), so this almost always costs one draw of k
        integers — never an O(n) permutation.
        """
        sites = self._dedupe(self._gen.integers(0, n_sites, size=k))
        while sites.size < k:
            extra = self._gen.integers(0, n_sites, size=k - sites.size)
            sites = self._dedupe(np.concatenate([sites, extra]))
        return sites

    # ------------------------------------------------------------------
    # TRNG bit-planes
    # ------------------------------------------------------------------
    def _trng_planes(self, shape: Tuple[int, ...]) -> np.ndarray:
        """M bit-planes of in-memory true-random bits."""
        p1 = 0.5 + self.trng_bias
        bits = (self._gen.random((self.segment_bits,) + shape) < p1)
        bits = bits.astype(np.uint8)
        rho = self.trng_autocorr
        if rho != 0.0:
            # Lag-1 correlation along the stream axis (last axis).
            copy = self._gen.random(bits.shape) < abs(rho)
            prev = bits[..., :-1]
            tgt = bits[..., 1:]
            repl = prev if rho > 0 else 1 - prev
            bits[..., 1:] = np.where(copy[..., 1:], repl, tgt)
        return bits

    def _operand_planes(self, codes: np.ndarray, length: int) -> np.ndarray:
        """Operand bit-planes broadcast along the stream axis, MSB first."""
        m = self.segment_bits
        planes = np.empty((m,) + codes.shape + (length,), dtype=np.uint8)
        for i in range(m):
            bit = ((codes >> (m - 1 - i)) & 1).astype(np.uint8)
            planes[i] = np.broadcast_to(bit[..., None], codes.shape + (length,))
        return planes

    def _rn_integers(self, rn_planes: np.ndarray) -> np.ndarray:
        """Collapse M bit-planes into MSB-first integers per stream position."""
        rn = np.zeros(rn_planes.shape[1:], dtype=np.int64)
        for i in range(self.segment_bits):
            rn = (rn << 1) | rn_planes[i]
        return rn

    def _gt_scan_bits(self, a_planes: np.ndarray,
                      rn_planes: np.ndarray) -> np.ndarray:
        """Per-bit oracle of the faulty greater-than scan (one gate per step)."""
        shape = a_planes.shape[1:]
        flag = np.ones(shape, dtype=np.uint8)
        gt = np.zeros(shape, dtype=np.uint8)
        naive = self.mode == "naive"
        for i in range(self.segment_bits):
            diff = self._flip(a_planes[i] ^ rn_planes[i], "xor")
            term = self._flip(a_planes[i] & diff, "and")
            if naive:
                # Flag AND is a sensed array op in the naive design.
                term = self._flip(term & flag, "and")
                flag = self._flip(flag & (1 - diff), "and")
            else:
                # Predicated sensing in the latch pair: ideal.
                term = term & flag
                flag = flag & (1 - diff)
            gt = self._flip(gt | term, "or")
        return gt

    def _gt_scan_words(self, codes: np.ndarray, rn_planes: np.ndarray,
                       length: int) -> StreamBatch:
        """Word-domain faulty scan: identical draws, word-level traffic.

        Operand planes enter as per-element constant streams (one payload
        row instead of ``length`` repeated bytes); RN planes pack once per
        step.  Every ``_flip_batch`` consumes the same full-bit-shape draw
        the oracle does, so outputs are bit-identical for the same seed.
        """
        batch = codes.shape
        flag = StreamBatch.ones(batch, length)
        gt = StreamBatch.zeros(batch, length)
        backend = gt.backend
        naive = self.mode == "naive"
        m = self.segment_bits
        for i in range(m):
            a_i = StreamBatch.constant((codes >> (m - 1 - i)) & 1, length,
                                       backend)
            rn_i = StreamBatch.from_bits(rn_planes[i], backend)
            diff = self._flip_batch(self._broadcast(a_i ^ rn_i, batch), "xor")
            term = self._flip_batch(a_i & diff, "and")
            if naive:
                term = self._flip_batch(term & flag, "and")
                flag = self._flip_batch(flag & ~diff, "and")
            else:
                term = term & flag
                flag = flag & ~diff
            gt = self._flip_batch(gt | term, "or")
        return gt

    @staticmethod
    def _broadcast(sb: StreamBatch, batch: Tuple[int, ...]) -> StreamBatch:
        """Materialise a batch-broadcast payload (needed before fancy ops)."""
        if sb.batch_shape == batch:
            return sb
        data = np.broadcast_to(sb.data, batch + sb.data.shape[-1:])
        return StreamBatch(np.ascontiguousarray(data), sb.length, sb.backend)

    def _sbs_from_planes(self, codes: np.ndarray, rn_planes: np.ndarray,
                         length: int) -> np.ndarray:
        """Stream payload (as a Bitstream) for quantised codes vs RN planes.

        Fault-free word-domain runs collapse the MSB-first greater-than scan
        into one vectorised ``X > RN`` comparison (bit-identical, no extra
        RNG); faulty runs execute the per-step scan, and the ``'bit'``
        oracle always walks the historical per-bit scan (its ``_flip`` calls
        are no-ops without fault rates), preserving the seed code path as a
        like-for-like baseline.
        """
        if self.fault_rates is None and self.fault_domain == "word":
            rn = self._rn_integers(rn_planes)
            return StreamBatch.compare(codes, rn).to_bitstream()
        if self.fault_domain == "bit":
            a = self._operand_planes(codes, length)
            full = np.broadcast_to(
                rn_planes,
                (self.segment_bits,) + codes.shape + (length,))
            bits = self._gt_scan_bits(a, np.ascontiguousarray(full))
            return Bitstream(bits)
        return self._gt_scan_words(codes, rn_planes, length).to_bitstream()

    # ------------------------------------------------------------------
    # SNG interface
    # ------------------------------------------------------------------
    def _codes(self, x) -> np.ndarray:
        return quantize(np.asarray(x, dtype=np.float64), self.segment_bits)

    def _book_conversions(self, count: int, length: int) -> None:
        # Energy scales with the stream footprint (one bit per column).
        unit = imsng_conversion_cost(self.segment_bits, self.mode, self.costs,
                                     width=length)
        # First conversion on the critical path, the rest pipelined.
        self.ledger.merge(unit)
        if count > 1:
            self.ledger.merge(unit.scaled(count - 1), overlapped=True)

    def _reshape_out(self, stream: Bitstream, x) -> Bitstream:
        return stream.reshape(*np.shape(x))

    def generate(self, x, length: int) -> Bitstream:
        """Independent SBS per element (fresh TRNG planes per element)."""
        codes = np.atleast_1d(self._codes(x))
        rn = self._trng_planes(codes.shape + (length,))
        out = self._sbs_from_planes(codes, rn, length)
        self._book_conversions(int(codes.size), length)
        return self._reshape_out(out, x)

    def generate_correlated(self, x, length: int) -> Bitstream:
        """One shared TRNG draw across the whole batch (SCC = +1)."""
        codes = np.atleast_1d(self._codes(x))
        rn1 = self._trng_planes((length,))
        rn = rn1.reshape((self.segment_bits,) + (1,) * codes.ndim + (length,))
        out = self._sbs_from_planes(codes, rn, length)
        self._book_conversions(int(codes.size), length)
        return self._reshape_out(out, x)

    def generate_pair(self, x, y, length: int,
                      correlated: bool) -> Tuple[Bitstream, Bitstream]:
        """Operand pair with per-element correlation control."""
        cx = np.atleast_1d(self._codes(x))
        cy = np.atleast_1d(self._codes(y))
        if cx.shape != cy.shape:
            raise ValueError("operand batches must share a shape")
        rnx = self._trng_planes(cx.shape + (length,))
        rny = rnx if correlated else self._trng_planes(cy.shape + (length,))
        bx = self._sbs_from_planes(cx, rnx, length)
        by = self._sbs_from_planes(cy, rny, length)
        self._book_conversions(2 * int(cx.size), length)
        return (self._reshape_out(bx, x), self._reshape_out(by, x))

    # ------------------------------------------------------------------
    # SC operations (faulty bulk-bitwise execution)
    # ------------------------------------------------------------------
    def _book_op(self, op: str, length: int, batch: int) -> None:
        unit = sc_op_cost(op, length, self.costs, width=length)
        self.ledger.merge(unit)
        if batch > 1:
            self.ledger.merge(unit.scaled(batch - 1), overlapped=True)

    def _unary_batch(self, s: Bitstream) -> int:
        return int(np.prod(s.batch_shape)) if s.batch_shape else 1

    def _faulty_op(self, op_fn, gate: str, *streams: Bitstream) -> Bitstream:
        """Run one backend-routed bulk op with a single sensed fault site.

        The gate semantics live in :mod:`repro.core.ops` only; this helper
        just injects the per-bit flip of the (one) faulty sensing step on
        the op's output — in the word domain by default, through ``.bits``
        under the per-bit oracle.
        """
        out = op_fn(*streams)
        if self.fault_domain == "bit":
            return Bitstream(self._flip(out.bits, gate),
                             backend=streams[0].backend)
        return self._flip_batch(StreamBatch.from_bitstream(out),
                                gate).to_bitstream()

    def multiply(self, x: Bitstream, y: Bitstream) -> Bitstream:
        if self.fault_rates is None:
            out = scops.mul_and(x, y)
        else:
            out = self._faulty_op(scops.mul_and, "and", x, y)
        self._book_op("multiplication", x.length, self._unary_batch(x))
        return out

    def scaled_add(self, x: Bitstream, y: Bitstream,
                   r: Optional[Bitstream] = None) -> Bitstream:
        if r is None:
            r = self.generate(np.full(x.batch_shape or (1,), 0.5), x.length)
            r = r.reshape(*x.batch_shape)
        if self.fault_rates is None:
            out = scops.scaled_add_maj(x, y, r)
        else:
            out = self._faulty_op(scops.scaled_add_maj, "maj3", x, y, r)
        self._book_op("scaled_addition", x.length, self._unary_batch(x))
        return out

    def approx_add(self, x: Bitstream, y: Bitstream) -> Bitstream:
        if self.fault_rates is None:
            out = scops.add_or(x, y)
        else:
            out = self._faulty_op(scops.add_or, "or", x, y)
        self._book_op("approx_addition", x.length, self._unary_batch(x))
        return out

    def abs_subtract(self, x: Bitstream, y: Bitstream) -> Bitstream:
        if self.fault_rates is None:
            out = scops.sub_xor(x, y)
        else:
            out = self._faulty_op(scops.sub_xor, "xor", x, y)
        self._book_op("abs_subtraction", x.length, self._unary_batch(x))
        return out

    def minimum(self, x: Bitstream, y: Bitstream) -> Bitstream:
        if self.fault_rates is None:
            out = scops.min_and(x, y)
        else:
            out = self._faulty_op(scops.min_and, "and", x, y)
        self._book_op("minimum", x.length, self._unary_batch(x))
        return out

    def maximum(self, x: Bitstream, y: Bitstream) -> Bitstream:
        if self.fault_rates is None:
            out = scops.max_or(x, y)
        else:
            out = self._faulty_op(scops.max_or, "or", x, y)
        self._book_op("maximum", x.length, self._unary_batch(x))
        return out

    def divide(self, x: Bitstream, y: Bitstream) -> Bitstream:
        """CORDIV on the peripheral latches, one faulty step per bit.

        The dense faulty path samples its two read masks per stream
        position (``x_i`` then ``y_i``) — the latch-by-latch sensing order —
        so the word-domain scan consumes the RNG exactly like the per-bit
        oracle.  Under ``fault_sampling='sparse'`` each operand instead
        draws one Binomial flip count and scatters the read upsets straight
        into the packed payload.
        """
        p_read = self._rate("read")
        if self.fault_domain == "bit":
            # Conformance oracle: the historical per-bit latch recurrence.
            xb, yb = x.bits, y.bits
            out = np.empty_like(xb)
            state = np.zeros(xb.shape[:-1], dtype=np.uint8)
            for i in range(x.length):
                xi = self._flip(xb[..., i], "read")
                yi = self._flip(yb[..., i], "read")
                out_i = np.where(yi == 1, xi, state)
                state = out_i
                out[..., i] = out_i
            result = Bitstream(out, backend=x.backend)
        else:
            if p_read > 0.0:
                x, y = self._read_flip_pair(x, y, p_read)
            result = scops.div_cordiv(x, y)
        self._book_op("division", x.length, self._unary_batch(x))
        return result

    def divide_jk(self, j: Bitstream, k: Bitstream) -> Bitstream:
        """JK-flip-flop division ``j / (j + k)`` with per-cycle read faults.

        Same fault model as :meth:`divide`: every latch cycle reads the two
        input bits through the (faulty) sensing path, then clocks the ideal
        flip-flop.  The dense word path draws masks in the oracle's
        ``j_i``-then-``k_i`` order (bit-identical per seed); the sparse
        path scatters Binomial read upsets into the payloads.
        """
        p_read = self._rate("read")
        if self.fault_domain == "bit":
            jb, kb = j.bits, k.bits
            out = np.empty_like(jb)
            state = np.zeros(jb.shape[:-1], dtype=np.uint8)
            for i in range(j.length):
                ji = self._flip(jb[..., i], "read")
                ki = self._flip(kb[..., i], "read")
                state = (ji & (1 - state)) | ((1 - ki) & state)
                out[..., i] = state
            result = Bitstream(out, backend=j.backend)
        else:
            if p_read > 0.0:
                j, k = self._read_flip_pair(j, k, p_read)
            result = scops.div_jk(j, k)
        self._book_op("division", j.length, self._unary_batch(j))
        return result

    def _read_flip_pair(self, x: Bitstream, y: Bitstream,
                        p_read: float) -> Tuple[Bitstream, Bitstream]:
        """Apply the sequential dividers' per-cycle read flips in the word
        domain, honouring the configured sampling mode."""
        sx = StreamBatch.from_bitstream(x)
        sy = StreamBatch.from_bitstream(y)
        if self.fault_sampling == "sparse":
            return (self._flip_sparse(sx, p_read).to_bitstream(),
                    self._flip_sparse(sy, p_read).to_bitstream())
        bshape = x.batch_shape
        mx = np.empty(bshape + (x.length,), dtype=bool)
        my = np.empty(bshape + (x.length,), dtype=bool)
        for i in range(x.length):
            mx[..., i] = self._gen.random(bshape) < p_read
            my[..., i] = self._gen.random(bshape) < p_read
        return sx.flip(mx).to_bitstream(), sy.flip(my).to_bitstream()

    def maj(self, x: Bitstream, y: Bitstream, z: Bitstream) -> Bitstream:
        if self.fault_rates is None:
            out = scops.scaled_add_maj(x, y, z)
        else:
            out = self._faulty_op(scops.scaled_add_maj, "maj3", x, y, z)
        self._book_op("scaled_addition", x.length, self._unary_batch(x))
        return out

    def mux(self, sel: Bitstream, a: Bitstream, b: Bitstream) -> Bitstream:
        """2-to-1 MUX as three scouting-logic steps: 2 ANDs + OR.

        ``b`` when ``sel`` is 1.  Unlike the majority blend this is exact
        for any operand ordering and correlation, at 3x the sensing cost
        (and 3 fault sites instead of 1).  The faulty path applies all
        three flips in the configured domain — under ``'word'`` the operand
        payloads never unpack.
        """
        if self.fault_rates is None:
            out = scops.mux2(sel, a, b)
        elif self.fault_domain == "bit":
            t1 = self._flip(sel.bits & b.bits, "and")
            t2 = self._flip((1 - sel.bits) & a.bits, "and")
            out = Bitstream(self._flip(t1 | t2, "or"), backend=a.backend)
        else:
            ss = StreamBatch.from_bitstream(sel)
            sa = StreamBatch.from_bitstream(a)
            sb = StreamBatch.from_bitstream(b)
            t1 = self._flip_batch(ss & sb, "and")
            t2 = self._flip_batch(~ss & sa, "and")
            out = self._flip_batch(t1 | t2, "or").to_bitstream()
        batch = self._unary_batch(a)
        self._book_op("mux2", a.length, batch)
        return out

    def op(self, name: str, x: Bitstream, y: Bitstream, **kw) -> Bitstream:
        """Dispatch by Table II row name."""
        table = {
            "multiplication": self.multiply,
            "scaled_addition": self.scaled_add,
            "approx_addition": self.approx_add,
            "abs_subtraction": self.abs_subtract,
            "division": self.divide,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }
        if name not in table:
            raise ValueError(f"unknown op {name!r}")
        return table[name](x, y, **kw)

    # ------------------------------------------------------------------
    # S-to-B
    # ------------------------------------------------------------------
    def to_binary(self, stream: Union[Bitstream, StreamBatch]) -> np.ndarray:
        """In-memory S-to-B: reference column + ADC (or ideal popcount).

        Accepts a ``Bitstream`` or a ``StreamBatch`` natively, so batched
        pipelines read out straight from the payload container.  Under
        ``cell_model='column'`` (and under ``ideal_stob``) only the
        backend-routed popcount touches the stream data — packed payloads
        never unpack.
        """
        n_vals = self._unary_batch(stream)
        self.ledger.merge(stob_cost(n_vals, self.costs, stream.length))
        if self.ideal_stob:
            return stream.value()
        return self._stob.convert(stream)

    # Alias so the engine satisfies the converter protocol of ScFlow.
    def convert(self, stream: Union[Bitstream, StreamBatch]) -> np.ndarray:
        return self.to_binary(stream)

    def reset_ledger(self) -> None:
        self.ledger = EnergyLedger()


class EngineFactory:
    """Picklable per-chunk engine factory for the sharded accuracy harness.

    The Monte-Carlo harness (:func:`repro.core.accuracy.op_mse` /
    :func:`~repro.core.accuracy.sng_mse` with ``jobs=N``) shards its chunks
    over worker processes and hands each chunk a deterministic
    ``SeedSequence`` child; this wrapper turns engine constructor arguments
    into the ``factory(seed_sequence) -> sng`` callable those paths expect,
    so faulty Table-I/II style sweeps can opt into any engine axis —
    including ``fault_sampling='sparse'`` — without a bespoke closure
    (closures don't pickle)::

        op_mse("multiplication",
               EngineFactory(fault_rates=DEFAULT_FAULT_RATES,
                             fault_sampling="sparse"),
               length=256, jobs=8)

    A :class:`repro.config.RunConfig` can supply the model axes instead:
    ``EngineFactory(config=RunConfig.fast(), fault_rates=...)``; explicit
    kwargs still override the config, exactly as on the engine itself.
    """

    def __init__(self, config=None, **engine_kwargs):
        if "rng" in engine_kwargs:
            raise ValueError("EngineFactory derives each chunk engine's rng "
                             "from the harness's SeedSequence; do not pass "
                             "'rng'")
        # validate eagerly, in the parent
        InMemorySCEngine(config=config, **engine_kwargs)
        self.config = config
        self.engine_kwargs = engine_kwargs

    def __call__(self, seed_seq: np.random.SeedSequence) -> InMemorySCEngine:
        return InMemorySCEngine(rng=np.random.default_rng(seed_seq),
                                config=self.config, **self.engine_kwargs)
