"""Closed-form cost model of the in-memory SC design (Table III, ReRAM rows).

Latency/energy of every flow stage, expressed in scouting-logic step counts
priced by :class:`~repro.energy.params.ReRamStepCosts`:

* IMSNG conversion — ``5M`` senses + ``2M`` writes (naive) or ``3M`` senses
  + ``M`` latch cycles + 1 write (opt);
* bulk-bitwise SC ops — a single sensing step for AND/OR/XOR/MAJ (the whole
  row, i.e. the whole stream, in parallel), plus one row write to make the
  result persistent where the flow needs it;
* CORDIV division — one calibrated peripheral JK step per stream bit;
* S-to-B — one reference-column activation plus one ADC conversion per
  recovered value.

Latency composition assumes the paper's pipelined multi-array organisation:
operand conversions overlap, so a flow's critical path contains one
conversion, the op and the S-to-B; energy adds every stage of every operand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..energy.model import EnergyLedger
from ..energy.params import DEFAULT_RERAM_COSTS, ReRamStepCosts

__all__ = [
    "imsng_conversion_cost",
    "sc_op_cost",
    "stob_cost",
    "ReRamScDesign",
    "SC_OP_SENSE_STEPS",
]

# Sensing steps for one bulk-bitwise execution of each SC operation.
# XOR uses the two-reference window read; scaled addition is the 3-input
# MAJ single-cycle op of Sec. III-B.
SC_OP_SENSE_STEPS: Dict[str, int] = {
    "multiplication": 1,
    "scaled_addition": 1,
    "approx_addition": 1,
    "abs_subtraction": 1,
    "minimum": 1,
    "maximum": 1,
    # General 2-to-1 MUX decomposed into 2 ANDs + OR (Sec. III-B's MAJ
    # substitution covers the symmetric 0.5-select case in one step; the
    # general select needs the explicit decomposition).
    "mux2": 3,
}


def imsng_conversion_cost(segment_bits: int = 8, mode: str = "opt",
                          costs: ReRamStepCosts = DEFAULT_RERAM_COSTS,
                          width: Optional[int] = None,
                          include_random_fill: bool = False) -> EnergyLedger:
    """Cost of converting one operand into one SBS row.

    ``width`` defaults to the cost model's row width; energies scale
    linearly with it.  ``include_random_fill`` adds the M TRNG row writes
    (excluded from the paper's per-conversion anchor numbers, since random
    rows are refilled in the background by the TRNG).
    """
    if mode not in ("naive", "opt"):
        raise ValueError("mode must be 'naive' or 'opt'")
    w = costs.row_width if width is None else width
    m = segment_bits
    led = EnergyLedger()
    if mode == "naive":
        led.record("imsng_sense", costs.t_sense, costs.sense_energy(w),
                   count=5 * m)
        led.record("imsng_write", costs.t_write, costs.write_energy(w),
                   count=2 * m)
    else:
        led.record("imsng_sense", costs.t_sense, costs.sense_energy(w),
                   count=3 * m)
        led.record("imsng_latch", costs.t_latch,
                   costs.e_latch_row * w / costs.row_width, count=m)
        led.record("imsng_write", costs.t_write, costs.write_energy(w),
                   count=1)
    if include_random_fill:
        led.record("trng_fill", costs.t_write, costs.write_energy(w),
                   count=m, overlapped=True)
    return led


def sc_op_cost(op: str, length: int = 256,
               costs: ReRamStepCosts = DEFAULT_RERAM_COSTS,
               width: Optional[int] = None) -> EnergyLedger:
    """Cost of one bulk-bitwise SC operation on resident SBS rows."""
    w = costs.row_width if width is None else width
    led = EnergyLedger()
    if op == "division":
        led.record("cordiv", costs.t_div_bit,
                   costs.e_div_bit * w / costs.row_width, count=length)
        return led
    if op not in SC_OP_SENSE_STEPS:
        raise ValueError(f"unknown SC op {op!r}")
    led.record(f"op_{op}", costs.t_sense, costs.sense_energy(w),
               count=SC_OP_SENSE_STEPS[op])
    return led


def stob_cost(values: int = 1, costs: ReRamStepCosts = DEFAULT_RERAM_COSTS,
              length: int = 256) -> EnergyLedger:
    """Cost of S-to-B: a reference-column sensing + one ADC per value."""
    led = EnergyLedger()
    led.record("stob_sense", costs.t_sense, costs.sense_energy(length),
               count=values)
    led.record("stob_adc", costs.t_adc, costs.e_adc, count=values)
    return led


@dataclass
class ReRamScDesign:
    """The paper's in-memory SC design as a cost generator (Table III ✦).

    Parameters
    ----------
    segment_bits:
        IMSNG random-number width M.
    mode:
        IMSNG variant used for conversions.
    costs:
        Step-cost parameter set.
    """

    segment_bits: int = 8
    mode: str = "opt"
    costs: ReRamStepCosts = DEFAULT_RERAM_COSTS

    def operation_cost(self, op: str, length: int = 256,
                       conversions: int = 1,
                       include_stob: bool = False) -> EnergyLedger:
        """End-to-end cost of one SC arithmetic operation.

        The critical path carries one conversion (operand conversions are
        pipelined across arrays; this is also Table III's accounting, which
        prices the Binary->SC column once per flow), plus the op and
        optionally the S-to-B.  ``conversions`` > 1 adds the extra operand
        conversions as overlapped energy.
        """
        led = imsng_conversion_cost(self.segment_bits, self.mode, self.costs)
        for _ in range(conversions - 1):
            led.merge(imsng_conversion_cost(self.segment_bits, self.mode,
                                            self.costs), overlapped=True)
        led.merge(sc_op_cost(op, length, self.costs))
        if include_stob:
            led.merge(stob_cost(1, self.costs, length))
        return led

    def throughput_ops_per_s(self, op: str, length: int = 256,
                             conversions: int = 1,
                             parallel_flows: int = 1) -> float:
        """Operations per second with SIMD across ``parallel_flows`` mats."""
        led = self.operation_cost(op, length, conversions, include_stob=True)
        if led.latency_s <= 0:
            raise ValueError("zero-latency flow")
        return parallel_flows / led.latency_s

    def table_rows(self, length: int = 256) -> Dict[str, Dict[str, float]]:
        """Latency/energy per op, matching Table III's ReRAM section."""
        ops = {
            "Multiplication": "multiplication",
            "Addition": "scaled_addition",
            "Subtraction": "abs_subtraction",
            "Division": "division",
        }
        out: Dict[str, Dict[str, float]] = {}
        for label, op in ops.items():
            # Table III prices the S-to-B component (the shared 8-bit ADC)
            # as its own row, so the per-op rows exclude it.
            led = self.operation_cost(op, length, conversions=1,
                                      include_stob=False)
            out[label] = {"latency_ns": led.latency_ns,
                          "energy_nj": led.energy_nj}
        return out
