"""The paper's contribution: the all-in-memory SC accelerator model."""

from .gtnetwork import GT_OPS_PER_BIT, build_gt_xag, gt_reference
from .imsng import ConversionResult, ImsngUnit
from .stob import InMemoryStoB
from .cost import (
    ReRamScDesign,
    SC_OP_SENSE_STEPS,
    imsng_conversion_cost,
    sc_op_cost,
    stob_cost,
)
from .engine import EngineFactory, InMemorySCEngine
from .mapping import MatMapping, ScProgram, Statement, map_program

__all__ = [
    "GT_OPS_PER_BIT", "build_gt_xag", "gt_reference",
    "ConversionResult", "ImsngUnit",
    "InMemoryStoB",
    "ReRamScDesign", "SC_OP_SENSE_STEPS",
    "imsng_conversion_cost", "sc_op_cost", "stob_cost",
    "EngineFactory", "InMemorySCEngine",
    "MatMapping", "ScProgram", "Statement", "map_program",
]
