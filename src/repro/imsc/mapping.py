"""Mapping SC dataflow graphs onto mats, banks and traces.

The paper executes its flows on "multiple arrays to parallelize and
pipeline the different stages".  This module provides the compiler-ish
layer a user needs to do the same: describe an SC computation as a small
dataflow program, let the mapper assign stream rows to mats and stages to
banks, and obtain (a) a row-allocation report and (b) a
:class:`~repro.energy.nvmain.TraceRequest` stream for the NVMain-style
simulator.

Program model
-------------
A :class:`ScProgram` is a list of statements over named streams:

* ``convert(dst, operand)``      — IMSNG conversion of a binary operand;
* ``op(kind, dst, srcs)``        — bulk-bitwise SC op (and/or/xor/maj3/mux);
* ``divide(dst, num, den)``      — CORDIV recurrence;
* ``to_binary(src)``             — reference-column + ADC read-out.

The mapper is deliberately simple — greedy row allocation, round-robin
conversion banks, one compute bank — but it is deterministic and fully
tested, and its output traces reproduce the pipelining behaviour the cost
model assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..energy.nvmain import TraceRequest
from ..energy.traces import imsng_trace

__all__ = ["Statement", "ScProgram", "MatMapping", "map_program"]

_SINGLE_CYCLE_OPS = ("and", "or", "xor", "xnor", "nand", "nor", "maj3")


@dataclass(frozen=True)
class Statement:
    """One dataflow statement."""

    kind: str                      # 'convert' | 'op' | 'divide' | 'readout'
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    op: Optional[str] = None       # gate for 'op' statements


class ScProgram:
    """A small SC dataflow program builder."""

    def __init__(self, length: int = 256, operand_bits: int = 8):
        if length < 1:
            raise ValueError("length must be >= 1")
        self.length = length
        self.operand_bits = operand_bits
        self.statements: List[Statement] = []
        self._defined: set = set()

    def _define(self, name: str) -> None:
        if name in self._defined:
            raise ValueError(f"stream {name!r} already defined")
        self._defined.add(name)

    def _use(self, *names: str) -> None:
        for n in names:
            if n not in self._defined:
                raise ValueError(f"stream {n!r} used before definition")

    def convert(self, dst: str) -> "ScProgram":
        """IMSNG-convert a binary operand into stream ``dst``."""
        self._define(dst)
        self.statements.append(Statement("convert", dst=dst))
        return self

    def op(self, kind: str, dst: str, *srcs: str) -> "ScProgram":
        """Bulk-bitwise SC operation producing ``dst`` from ``srcs``."""
        if kind not in _SINGLE_CYCLE_OPS and kind != "mux":
            raise ValueError(f"unknown op kind {kind!r}")
        arity = {"maj3": 3, "mux": 3}.get(kind, 2)
        if kind == "not":
            arity = 1
        if len(srcs) != arity:
            raise ValueError(f"{kind} takes {arity} sources, got {len(srcs)}")
        self._use(*srcs)
        self._define(dst)
        self.statements.append(Statement("op", dst=dst, srcs=srcs, op=kind))
        return self

    def divide(self, dst: str, num: str, den: str) -> "ScProgram":
        """CORDIV division producing ``dst``."""
        self._use(num, den)
        self._define(dst)
        self.statements.append(Statement("divide", dst=dst, srcs=(num, den)))
        return self

    def to_binary(self, src: str) -> "ScProgram":
        """Read out ``src`` through the reference column + ADC."""
        self._use(src)
        self.statements.append(Statement("readout", srcs=(src,)))
        return self

    @property
    def streams(self) -> List[str]:
        return sorted(self._defined)


@dataclass
class MatMapping:
    """Result of mapping a program onto the memory organisation."""

    rows: Dict[str, Tuple[int, int]]       # stream -> (bank, row)
    trace: List[TraceRequest]
    rows_per_mat: int
    n_banks: int

    def rows_used(self, bank: int) -> int:
        return sum(1 for (b, _r) in self.rows.values() if b == bank)


def map_program(program: ScProgram, n_banks: int = 4,
                rows_per_mat: int = 64,
                width: int = 256) -> MatMapping:
    """Greedily map a program onto banks and emit its memory trace.

    Conversions round-robin over the first ``n_banks - 1`` banks (they
    pipeline); compute statements run on the last bank, with cross-bank
    dependencies serialising producer/consumer pairs.  Every produced
    stream gets one row; the mapper raises if a bank runs out of rows.
    """
    if n_banks < 2:
        raise ValueError("need at least 2 banks (conversion + compute)")
    rows: Dict[str, Tuple[int, int]] = {}
    next_row = [0] * n_banks
    trace: List[TraceRequest] = []
    # Index of the trace entry that produced each stream.
    producer: Dict[str, int] = {}
    compute_bank = n_banks - 1
    conv_i = 0

    def alloc(name: str, bank: int) -> None:
        if next_row[bank] >= rows_per_mat:
            raise ValueError(
                f"bank {bank} out of rows mapping stream {name!r}")
        rows[name] = (bank, next_row[bank])
        next_row[bank] += 1

    for stmt in program.statements:
        if stmt.kind == "convert":
            bank = conv_i % (n_banks - 1)
            conv_i += 1
            sub = imsng_trace(program.operand_bits, "opt", bank, width)
            trace.extend(sub)
            alloc(stmt.dst, bank)
            producer[stmt.dst] = len(trace) - 1
        elif stmt.kind == "op":
            dep = max((producer[s] for s in stmt.srcs),
                      default=None)
            steps = 3 if stmt.op == "mux" else 1
            for k in range(steps):
                trace.append(TraceRequest(compute_bank, "sense", width,
                                          dep if k == 0 else None,
                                          stmt.op or ""))
                dep = None
            alloc(stmt.dst, compute_bank)
            producer[stmt.dst] = len(trace) - 1
        elif stmt.kind == "divide":
            dep = max(producer[s] for s in stmt.srcs)
            for k in range(program.length):
                trace.append(TraceRequest(compute_bank, "sense", width,
                                          dep if k == 0 else None, "div"))
                dep = None
                trace.append(TraceRequest(compute_bank, "latch", width,
                                          tag="jk"))
            alloc(stmt.dst, compute_bank)
            producer[stmt.dst] = len(trace) - 1
        elif stmt.kind == "readout":
            dep = producer[stmt.srcs[0]]
            trace.append(TraceRequest(compute_bank, "sense", 1, dep,
                                      "refcol"))
            trace.append(TraceRequest(compute_bank, "adc", 1, tag="adc"))
        else:   # pragma: no cover - builder prevents this
            raise ValueError(f"unknown statement kind {stmt.kind!r}")
    return MatMapping(rows=rows, trace=trace, rows_per_mat=rows_per_mat,
                      n_banks=n_banks)
