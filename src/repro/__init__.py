"""repro — All-in-Memory Stochastic Computing using ReRAM (DAC 2025).

A full Python reproduction of the paper's system:

* :mod:`repro.core` — stochastic-computing semantics (bit-streams, SNGs,
  arithmetic, conversion, correlation control);
* :mod:`repro.reram` — behavioural ReRAM substrate (VCM device model,
  crossbar arrays, scouting logic, TRNG, ADC, fault model);
* :mod:`repro.logic` — XOR-AND-inverter graphs and synthesis onto
  scouting-logic schedules;
* :mod:`repro.imsc` — the paper's contribution: the all-in-memory SC engine
  (IMSNG, in-memory arithmetic, in-memory S-to-B, cost accounting);
* :mod:`repro.energy` — event-based energy/latency model and a simplified
  NVMain-style trace simulator;
* :mod:`repro.cmos` — the CMOS SC baseline (45 nm cell-level cost model);
* :mod:`repro.bincim` — the binary CIM baseline (AritPIM-style bit-serial
  arithmetic with fault injection);
* :mod:`repro.apps` — image compositing, bilinear interpolation and image
  matting on all backends, plus quality metrics;
* :mod:`repro.serve` — async request-serving layer: resident worker pool,
  fair round-robin tile scheduler, stdin/JSON service and client
  (``python -m repro serve``);
* :mod:`repro.analysis` — runners that regenerate every table and figure of
  the paper's evaluation.

How to run is described by one frozen :class:`repro.config.RunConfig`
threaded through every layer.  The package default is the **fast preset**
(``RunConfig.fast()``: packed backend, column S-to-B, sparse fault masks,
shm transport); the paper-faithful oracles stay one preset away as
``RunConfig.oracle()``.
"""

from .config import RunConfig
from .core import (
    Bitstream,
    ComparatorSng,
    Lfsr,
    ScFlow,
    SegmentSng,
    SobolRng,
    SoftwareRng,
    ops,
    scc,
)

__version__ = "1.0.0"

__all__ = [
    "Bitstream",
    "ComparatorSng",
    "RunConfig",
    "Lfsr",
    "ScFlow",
    "SegmentSng",
    "SobolRng",
    "SoftwareRng",
    "ops",
    "scc",
    "__version__",
]
