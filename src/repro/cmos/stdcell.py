"""45 nm standard-cell cost library.

The paper synthesises the CMOS SC baselines with Synopsys Design Compiler on
a 45 nm gate library.  This module is the equivalent substrate: a small
standard-cell library with *post-synthesis effective* per-cell delay, energy
and area (effective = including typical clock-tree, wire and leakage
contributions amortised per cell, which is why the energies sit above raw
switching energies of the corresponding gates).

Component models in :mod:`repro.cmos.components` compose these cells into
LFSRs, comparators, Sobol generators and counters; critical-path delay and
per-cycle energy then follow structurally instead of being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Cell", "CELLS", "cell"]


@dataclass(frozen=True)
class Cell:
    """One standard cell's effective cost numbers.

    Attributes
    ----------
    delay_ns:
        Propagation delay contribution on a typical path.
    energy_pj:
        Energy per clock cycle (switching + clock + amortised leakage) at
        typical activity.
    area_um2:
        Cell area (used for the area summaries only).
    """

    name: str
    delay_ns: float
    energy_pj: float
    area_um2: float


# Effective 45 nm numbers, calibrated so that the composed CMOS SC designs
# land on Table III's published latency/energy envelope.
CELLS: Dict[str, Cell] = {
    "INV":   Cell("INV",   0.010, 0.001, 0.6),
    "AND2":  Cell("AND2",  0.030, 0.004, 1.1),
    "OR2":   Cell("OR2",   0.030, 0.004, 1.1),
    "XOR2":  Cell("XOR2",  0.060, 0.006, 1.6),
    "MUX2":  Cell("MUX2",  0.050, 0.005, 1.4),
    "HA":    Cell("HA",    0.070, 0.006, 2.2),
    "FA":    Cell("FA",    0.090, 0.009, 3.4),
    "DFF":   Cell("DFF",   0.100, 0.020, 4.5),  # clk-to-q; energy incl. clock
    "JKFF":  Cell("JKFF",  0.110, 0.022, 5.0),
    "TSPC":  Cell("TSPC",  0.080, 0.014, 3.2),  # fast dynamic flop
}


def cell(name: str) -> Cell:
    """Look up a cell; raises ``KeyError`` with the known names on miss."""
    try:
        return CELLS[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; available: {sorted(CELLS)}") from None
