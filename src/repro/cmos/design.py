"""The CMOS SC baseline design (Table III, ✛ rows).

A conventional bit-serial stochastic datapath: SNGs (RNG + comparator) feed
a single logic gate (or the CORDIV MUX+DFF kernel); a binary counter
accumulates the output stream.  One output bit is produced per clock, so

* total latency = critical-path clock period x N (the paper's footnote:
  "Total latency = Critical Path Latency x N"),
* total energy = per-cycle datapath energy x N,

plus, for system-level comparisons (Figs. 4-5), the off-chip movement of
operand/result bytes between the memory and the SC logic.

Correlation-dependent ops (subtraction, division, min, max) share one RNG
between the two comparators — exactly the hardware trick that produces
SCC = +1 streams — which is why their per-cycle energy is *lower* than
multiplication's despite the extra comparator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..energy.model import EnergyLedger
from ..energy.params import DEFAULT_TRANSFER_COSTS, TransferCosts
from .components import (
    Component,
    comparator,
    cordiv_unit,
    counter,
    gate_component,
    lfsr,
    mux_component,
    sobol_generator,
)

__all__ = ["CmosScDesign", "FLOP_SETUP_NS"]

# Setup+skew margin added to every bit-serial clock period.
FLOP_SETUP_NS = 0.04


@dataclass(frozen=True)
class _Datapath:
    """Component inventory of one SC operation's datapath."""

    rngs: int              # number of RNG instances (sharing => fewer)
    comparators: int       # SNG comparators
    kernel: Component      # the SC 'ALU'
    extra_sngs_desc: str = ""


class CmosScDesign:
    """Cost model of a CMOS SC datapath with a selectable RNG.

    Parameters
    ----------
    rng:
        'lfsr' or 'sobol'.
    bits:
        SNG precision n (8 in the paper).
    stob_bits:
        Counter width for S-to-B; ``None`` derives ``log2(N)+1`` per call.
    transfer:
        Off-chip transfer cost parameters for system-level flows.
    """

    def __init__(self, rng: str = "lfsr", bits: int = 8,
                 transfer: TransferCosts = DEFAULT_TRANSFER_COSTS):
        if rng not in ("lfsr", "sobol"):
            raise ValueError("rng must be 'lfsr' or 'sobol'")
        self.rng_kind = rng
        self.bits = bits
        self.transfer = transfer
        self._rng_comp = lfsr(bits) if rng == "lfsr" else sobol_generator(bits)
        self._cmp = comparator(bits)

    # ------------------------------------------------------------------
    # Datapath structure per operation
    # ------------------------------------------------------------------
    def _datapath(self, op: str) -> _Datapath:
        table: Dict[str, _Datapath] = {
            # Uncorrelated inputs: one RNG per operand.
            "multiplication": _Datapath(2, 2, gate_component("and2")),
            "approx_addition": _Datapath(2, 2, gate_component("or2")),
            # Scaled addition: two operand SNGs; the 0.5 select stream comes
            # from a single toggle flop (accounted in cycle_energy_pj).
            "scaled_addition": _Datapath(2, 2, mux_component(), "toggle-select"),
            # Correlated inputs: one shared RNG, two comparators.
            "abs_subtraction": _Datapath(1, 2, gate_component("xor2")),
            "division": _Datapath(1, 2, cordiv_unit()),
            "minimum": _Datapath(1, 2, gate_component("and2")),
            "maximum": _Datapath(1, 2, gate_component("or2")),
        }
        if op not in table:
            raise ValueError(f"unknown SC op {op!r}")
        return table[op]

    @staticmethod
    def _counter_bits(length: int) -> int:
        return int(math.ceil(math.log2(length + 1)))

    # ------------------------------------------------------------------
    # Cycle-level numbers
    # ------------------------------------------------------------------
    def clock_period_ns(self, op: str) -> float:
        """Bit-serial clock period: RNG -> comparator -> kernel -> counter."""
        dp = self._datapath(op)
        cnt = counter(self._counter_bits(256))  # counter path is width-free
        return (self._rng_comp.path_ns + self._cmp.path_ns
                + dp.kernel.path_ns + cnt.path_ns + FLOP_SETUP_NS)

    def cycle_energy_pj(self, op: str, length: int = 256) -> float:
        """Energy per output bit (datapath clocked once)."""
        dp = self._datapath(op)
        cnt = counter(self._counter_bits(length))
        extra = 0.020 if dp.extra_sngs_desc == "toggle-select" else 0.0
        return (dp.rngs * self._rng_comp.energy_pj
                + dp.comparators * self._cmp.energy_pj
                + dp.kernel.energy_pj + cnt.energy_pj + extra)

    def area_um2(self, op: str, length: int = 256) -> float:
        dp = self._datapath(op)
        cnt = counter(self._counter_bits(length))
        return (dp.rngs * self._rng_comp.area_um2
                + dp.comparators * self._cmp.area_um2
                + dp.kernel.area_um2 + cnt.area_um2)

    # ------------------------------------------------------------------
    # Operation-level numbers (Table III)
    # ------------------------------------------------------------------
    def latency_ns(self, op: str, length: int = 256) -> float:
        return self.clock_period_ns(op) * length

    def energy_nj(self, op: str, length: int = 256) -> float:
        return self.cycle_energy_pj(op, length) * length * 1e-3

    def table_rows(self, length: int = 256) -> Dict[str, Dict[str, float]]:
        """Latency/energy per op, matching Table III's CMOS section."""
        labels = {
            "Multiplication": "multiplication",
            "Addition": "scaled_addition",
            "Subtraction": "abs_subtraction",
            "Division": "division",
        }
        return {
            label: {"latency_ns": self.latency_ns(op, length),
                    "energy_nj": self.energy_nj(op, length)}
            for label, op in labels.items()
        }

    # ------------------------------------------------------------------
    # System-level flows (Figs. 4-5)
    # ------------------------------------------------------------------
    def flow_cost(self, op_counts: Dict[str, int], length: int,
                  io_bytes: float, parallel_units: int = 1) -> EnergyLedger:
        """Cost of a flow executing ``op_counts`` plus data movement.

        ``io_bytes`` covers operand loading and result write-back between
        the memory and the SC logic.  ``parallel_units`` replicated
        datapaths divide latency but not energy.
        """
        led = EnergyLedger()
        for op, count in op_counts.items():
            if count <= 0:
                continue
            led.record(f"cmos_{op}",
                       self.latency_ns(op, length) * 1e-9 / parallel_units,
                       self.energy_nj(op, length) * 1e-9,
                       count=count)
        if io_bytes > 0:
            led.record("transfer", self.transfer.latency(io_bytes),
                       self.transfer.energy(io_bytes))
        return led

    def throughput_ops_per_s(self, op: str, length: int = 256,
                             parallel_units: int = 1) -> float:
        lat = self.latency_ns(op, length) * 1e-9
        return parallel_units / lat
