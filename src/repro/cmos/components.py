"""CMOS SC hardware components composed from standard cells.

Each component reports three numbers the design-level model consumes:

* ``path_ns``   — its contribution to the bit-serial clock period;
* ``energy_pj`` — energy per clock cycle;
* ``area_um2``  — silicon area.

The structural composition follows the classic SC datapaths: an SNG is an
RNG plus an n-bit comparator; the S-to-B converter is a ``log2(N)+1``-bit
ripple counter; operations are single gates or a MUX (+ a flip-flop for
CORDIV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .stdcell import cell

__all__ = [
    "Component",
    "lfsr",
    "sobol_generator",
    "comparator",
    "counter",
    "gate_component",
    "mux_component",
    "cordiv_unit",
]


@dataclass(frozen=True)
class Component:
    """Aggregated cost numbers of one hardware block."""

    name: str
    path_ns: float
    energy_pj: float
    area_um2: float
    cells: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def compose(name: str, parts: List[Tuple[str, int]],
                path_cells: List[str]) -> "Component":
        """Build a component from a cell inventory and a critical path.

        ``parts`` lists (cell name, count) pairs; ``path_cells`` the cells
        traversed by the slowest signal within the component.
        """
        energy = sum(cell(c).energy_pj * n for c, n in parts)
        area = sum(cell(c).area_um2 * n for c, n in parts)
        path = sum(cell(c).delay_ns for c in path_cells)
        return Component(name, path, energy, area, tuple(parts))


def lfsr(bits: int = 8) -> Component:
    """Fibonacci LFSR: ``bits`` flops + 3 feedback XORs.

    The output word is the register contents, so the component's path
    contribution is just clk-to-q; the feedback XOR settles in parallel.
    """
    return Component.compose(
        f"lfsr{bits}",
        parts=[("DFF", bits), ("XOR2", 3)],
        path_cells=["DFF"],
    )


def sobol_generator(bits: int = 8) -> Component:
    """Sobol sequence generator (Gray-code recurrence).

    Structure: an index counter (``bits`` flops + half-adders), a
    least-significant-zero detector (priority chain of AND/INV), a direction
    -number lookup (``bits`` words, modelled as MUX tree levels) and the XOR
    accumulator register.  Matches the parallel-Sobol structure of Liu & Han
    (TVLSI'18) at the block level.
    """
    return Component.compose(
        f"sobol{bits}",
        # Dynamic (TSPC) flops for the index counter and the accumulator
        # register, as in the parallel-Sobol hardware literature.
        parts=[("TSPC", bits), ("HA", bits), ("AND2", bits),
               ("INV", bits), ("MUX2", bits), ("XOR2", bits), ("TSPC", bits)],
        # Clk-to-q plus the output-select buffer of the accumulator.
        path_cells=["TSPC", "INV"],
    )


def comparator(bits: int = 8) -> Component:
    """n-bit magnitude comparator (ripple structure).

    Per bit: XOR for equality, AND for the propagate chain, OR to merge the
    greater-than terms.  The ripple makes it the dominant combinational
    element of the SNG critical path.
    """
    return Component.compose(
        f"cmp{bits}",
        parts=[("XOR2", bits), ("AND2", bits), ("OR2", bits)],
        # Path: one XOR then the AND/OR ripple; synthesis balances the chain
        # into a partially flattened tree of ~3/4 the bit count.
        path_cells=["XOR2"] + ["AND2"] * (3 * bits // 4),
    )


def counter(bits: int) -> Component:
    """Binary up-counter for S-to-B conversion (``log2(N)+1`` bits)."""
    return Component.compose(
        f"cnt{bits}",
        parts=[("DFF", bits), ("HA", bits)],
        # Contribution to the cycle: the first half-adder plus setup; the
        # carry ripple overlaps the next bit period in a synthesised design.
        path_cells=["HA"],
    )


def gate_component(kind: str) -> Component:
    """A bare SC logic gate (the entire 'ALU' of a stochastic datapath)."""
    name = kind.upper()
    if name not in ("AND2", "OR2", "XOR2"):
        raise ValueError("gate must be and/or/xor")
    return Component.compose(kind, parts=[(name, 1)], path_cells=[name])


def mux_component() -> Component:
    """2-to-1 MUX for scaled addition."""
    return Component.compose("mux2", parts=[("MUX2", 1)], path_cells=["MUX2"])


def cordiv_unit() -> Component:
    """CORDIV division kernel: MUX + state flip-flop."""
    return Component.compose(
        "cordiv", parts=[("MUX2", 1), ("DFF", 1)], path_cells=["MUX2"])
