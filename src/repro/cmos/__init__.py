"""CMOS SC baseline: 45 nm standard cells, components, design cost model."""

from .stdcell import CELLS, Cell, cell
from .components import (
    Component,
    comparator,
    cordiv_unit,
    counter,
    gate_component,
    lfsr,
    mux_component,
    sobol_generator,
)
from .design import CmosScDesign, FLOP_SETUP_NS

__all__ = [
    "CELLS", "Cell", "cell",
    "Component", "comparator", "cordiv_unit", "counter", "gate_component",
    "lfsr", "mux_component", "sobol_generator",
    "CmosScDesign", "FLOP_SETUP_NS",
]
