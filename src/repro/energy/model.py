"""Event-based energy/latency accounting.

The ledger pattern used throughout the library: components record *events*
(named operations with a count and a per-event cost), and the ledger
aggregates totals and breakdowns.  Controllers' command traces
(:class:`repro.reram.controller.Command`) can be replayed directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..reram.controller import Command
from .params import DEFAULT_RERAM_COSTS, ReRamStepCosts

__all__ = ["EnergyLedger", "replay_trace"]


@dataclass
class EnergyLedger:
    """Accumulates per-category latency and energy.

    Latency accumulation supports two modes: ``serial`` events extend the
    critical path; ``overlapped`` events only add energy (they run in
    parallel with already-accounted work, e.g. pipelined conversions in a
    second array).
    """

    latency_s: float = 0.0
    energy_j: float = 0.0
    by_category: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def record(self, category: str, latency_s: float, energy_j: float,
               count: int = 1, overlapped: bool = False) -> None:
        """Add ``count`` events of the given per-event cost."""
        if count < 0:
            raise ValueError("count must be >= 0")
        dt = latency_s * count
        de = energy_j * count
        if not overlapped:
            self.latency_s += dt
        self.energy_j += de
        prev = self.by_category.get(category, (0.0, 0.0))
        self.by_category[category] = (prev[0] + (0.0 if overlapped else dt),
                                      prev[1] + de)

    def merge(self, other: "EnergyLedger", overlapped: bool = False) -> None:
        """Fold another ledger into this one.

        With ``overlapped=True`` the other ledger's latency is assumed hidden
        under this one's critical path (pipelining across arrays); its energy
        is still paid.
        """
        if not overlapped:
            self.latency_s += other.latency_s
        self.energy_j += other.energy_j
        for cat, (dt, de) in other.by_category.items():
            prev = self.by_category.get(cat, (0.0, 0.0))
            self.by_category[cat] = (prev[0] + (0.0 if overlapped else dt),
                                     prev[1] + de)

    def scaled(self, factor: float) -> "EnergyLedger":
        """A copy with all costs multiplied (e.g. per-pixel -> per-image)."""
        out = EnergyLedger(self.latency_s * factor, self.energy_j * factor)
        out.by_category = {k: (dt * factor, de * factor)
                           for k, (dt, de) in self.by_category.items()}
        return out

    @property
    def latency_ns(self) -> float:
        return self.latency_s * 1e9

    @property
    def energy_nj(self) -> float:
        return self.energy_j * 1e9

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Human-friendly per-category summary (ns / nJ)."""
        return {
            cat: {"latency_ns": dt * 1e9, "energy_nj": de * 1e9}
            for cat, (dt, de) in sorted(self.by_category.items())
        }

    def __repr__(self) -> str:
        return (f"EnergyLedger(latency={self.latency_ns:.1f} ns, "
                f"energy={self.energy_nj:.3f} nJ)")


def replay_trace(trace: Iterable[Command],
                 costs: ReRamStepCosts = DEFAULT_RERAM_COSTS,
                 ledger: Optional[EnergyLedger] = None) -> EnergyLedger:
    """Price a controller command trace with the given step costs.

    Write energy scales with the number of cells actually pulsed
    (differential writes); sensing energy scales with the row width.
    """
    led = ledger if ledger is not None else EnergyLedger()
    for cmd in trace:
        if cmd.kind == "read":
            led.record("read", costs.t_sense, costs.sense_energy(cmd.cells))
        elif cmd.kind == "sl":
            led.record(f"sl_{cmd.gate}", costs.t_sense,
                       costs.sense_energy(cmd.cells))
        elif cmd.kind == "write":
            led.record("write", costs.t_write, costs.write_energy(cmd.cells))
        elif cmd.kind == "latch":
            led.record("latch", costs.t_latch,
                       costs.e_latch_row * cmd.cells / costs.row_width)
        elif cmd.kind == "adc":
            led.record("adc", costs.t_adc, costs.e_adc, count=max(1, cmd.cells))
        else:
            raise ValueError(f"unknown command kind {cmd.kind!r}")
    return led
