"""Energy/latency modelling: parameters, ledger, NVMain-style simulator."""

from .params import (
    DEFAULT_RERAM_COSTS,
    DEFAULT_TRANSFER_COSTS,
    ReRamStepCosts,
    TransferCosts,
)
from .model import EnergyLedger, replay_trace
from .nvmain import MemorySystem, SimResult, TraceRequest
from .traces import imsng_trace, pipelined_flow_trace, sc_op_trace, stob_trace

__all__ = [
    "DEFAULT_RERAM_COSTS", "DEFAULT_TRANSFER_COSTS",
    "ReRamStepCosts", "TransferCosts",
    "EnergyLedger", "replay_trace",
    "MemorySystem", "SimResult", "TraceRequest",
    "imsng_trace", "pipelined_flow_trace", "sc_op_trace", "stob_trace",
]
