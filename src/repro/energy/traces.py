"""Trace generators for the NVMain-style simulator.

Builds :class:`~repro.energy.nvmain.TraceRequest` streams for the SC flow
stages — IMSNG conversions, bulk-bitwise SC operations and S-to-B — with the
banking/pipelining structure the paper describes ("we use multiple arrays to
parallelize and pipeline the different stages").
"""

from __future__ import annotations

from typing import List, Optional

from .nvmain import TraceRequest

__all__ = [
    "imsng_trace",
    "sc_op_trace",
    "stob_trace",
    "pipelined_flow_trace",
]


def imsng_trace(n_bits: int = 8, mode: str = "opt", bank: int = 0,
                width: int = 256,
                depends_on: Optional[int] = None,
                base_index: int = 0) -> List[TraceRequest]:
    """Trace of one IMSNG conversion (one operand -> one SBS row).

    ``mode='naive'`` issues 5n senses + 2n row writes (the feedback variant
    of Sec. III-A); ``mode='opt'`` issues 3n senses + n latch cycles + a
    single result write (predicated sensing).
    """
    if mode not in ("naive", "opt"):
        raise ValueError("mode must be 'naive' or 'opt'")
    reqs: List[TraceRequest] = []
    dep = depends_on
    if mode == "naive":
        for _ in range(n_bits):
            reqs.append(TraceRequest(bank, "sense", width, dep, "xor"))
            dep = None
            for _ in range(2):
                reqs.append(TraceRequest(bank, "sense", width, tag="and"))
            reqs.append(TraceRequest(bank, "write", width, tag="gt"))
            reqs.append(TraceRequest(bank, "sense", width, tag="and"))
            reqs.append(TraceRequest(bank, "sense", width, tag="or"))
            reqs.append(TraceRequest(bank, "write", width, tag="flag"))
    else:
        for _ in range(n_bits):
            reqs.append(TraceRequest(bank, "sense", width, dep, "xor"))
            dep = None
            reqs.append(TraceRequest(bank, "sense", width, tag="and"))
            reqs.append(TraceRequest(bank, "latch", width, tag="predicate"))
            reqs.append(TraceRequest(bank, "sense", width, tag="or"))
        reqs.append(TraceRequest(bank, "write", width, tag="sbs"))
    return reqs


def sc_op_trace(op: str, bank: int = 0, width: int = 256,
                length: int = 256,
                depends_on: Optional[int] = None) -> List[TraceRequest]:
    """Trace of one bulk-bitwise SC operation on resident SBS rows."""
    single = {"mul": "sense", "add": "sense", "add_or": "sense",
              "sub": "sense", "min": "sense", "max": "sense"}
    if op in single:
        return [TraceRequest(bank, "sense", width, depends_on, op)]
    if op == "div":
        # CORDIV is sequential: one latch-resident JK step per stream bit.
        # Approximated as a sense + latch pair per bit (the calibrated
        # per-bit cost lives in ReRamStepCosts.t_div_bit for closed-form
        # costing; the trace form exposes the structure).
        reqs: List[TraceRequest] = []
        dep = depends_on
        for _ in range(length):
            reqs.append(TraceRequest(bank, "sense", width, dep, "div"))
            dep = None
            reqs.append(TraceRequest(bank, "latch", width, tag="jk"))
        return reqs
    raise ValueError(f"unknown SC op {op!r}")


def stob_trace(bank: int = 0, conversions: int = 1,
               depends_on: Optional[int] = None) -> List[TraceRequest]:
    """Trace of S-to-B: one reference-column activation + ADC conversions."""
    return [
        TraceRequest(bank, "sense", 1, depends_on, "refcol"),
        TraceRequest(bank, "adc", conversions, tag="adc"),
    ]


def pipelined_flow_trace(n_operands: int, n_bits: int = 8,
                         op: str = "mul", n_banks: int = 4,
                         width: int = 256,
                         length: int = 256) -> List[TraceRequest]:
    """A full SC flow: conversions spread round-robin over banks, the SC op
    depending on the last conversion, then S-to-B.

    Models the paper's multi-array pipelining: with enough banks the
    conversions overlap and the op's critical path sees only one of them.
    """
    trace: List[TraceRequest] = []
    last_of_each: List[int] = []
    for i in range(n_operands):
        bank = i % max(1, n_banks - 1)
        sub = imsng_trace(n_bits, "opt", bank, width)
        trace.extend(sub)
        last_of_each.append(len(trace) - 1)
    op_bank = n_banks - 1
    op_reqs = sc_op_trace(op, op_bank, width, length,
                          depends_on=last_of_each[-1] if last_of_each else None)
    trace.extend(op_reqs)
    stob = stob_trace(op_bank, conversions=width, depends_on=len(trace) - 1)
    trace.extend(stob)
    return trace
