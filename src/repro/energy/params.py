"""Timing and energy parameter sets.

The paper extracts per-operation latency/energy of the in-memory design from
the scouting-logic work (Xie et al. [24]) and integrates them into NVMain;
this module holds the equivalent parameter sets.  The ReRAM step costs are
calibrated so that the two anchor points the paper publishes are met
exactly:

* IMSNG-naive: 395.4 ns and 10.23 nJ per 8-bit conversion
  (5n sensing steps + 2n row writes, n = 8);
* IMSNG-opt:    78.2 ns and  3.42 nJ per conversion
  (3n sensing steps after folding the two flag ANDs into predicated
  sensing, + 1 row write).

Solving those four equations for a 256-column row gives a 2.49 ns / 0.129 nJ
sensing step and an 18.5 ns / 0.316 nJ row write — comfortably inside the
published envelope for HfO2 scouting logic.  All values are exposed as plain
dataclass fields so sensitivity sweeps can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ReRamStepCosts", "TransferCosts", "DEFAULT_RERAM_COSTS",
           "DEFAULT_TRANSFER_COSTS"]


@dataclass(frozen=True)
class ReRamStepCosts:
    """Per-step latency/energy of the in-memory substrate.

    ``*_row`` energies are for a full row operation at ``row_width`` columns;
    per-cell values scale linearly for other widths.
    """

    row_width: int = 256
    t_sense: float = 2.488e-9        # one scouting-logic sensing step
    t_write: float = 18.51e-9        # one row write (program pulse)
    # Periphery-only latch cycles overlap the sensing step that produces
    # their datum (the predication happens inside the SA-to-latch path), so
    # they contribute energy but no critical-path latency.
    t_latch: float = 0.0
    e_sense_row: float = 0.1293e-9   # J per row sensing step
    e_write_row: float = 0.3156e-9   # J per row write
    e_latch_row: float = 0.004e-9    # J per latch cycle
    # Sequential CORDIV step: one sense of the operand rows plus the
    # latch-resident JK flip-flop update and driver feedback.  Calibrated to
    # Table III's division row (12544 ns at N=256 => 49 ns per stream bit).
    t_div_bit: float = 48.69e-9
    e_div_bit: float = 4.14e-12
    # ADC for S-to-B (ISAAC-style 8-bit SAR).
    t_adc: float = 0.78e-9
    e_adc: float = 2.0e-12

    @property
    def e_sense_cell(self) -> float:
        return self.e_sense_row / self.row_width

    @property
    def e_write_cell(self) -> float:
        return self.e_write_row / self.row_width

    def sense_energy(self, cells: int) -> float:
        return self.e_sense_cell * cells

    def write_energy(self, cells: int) -> float:
        return self.e_write_cell * cells

    def scaled(self, **overrides) -> "ReRamStepCosts":
        return replace(self, **overrides)


DEFAULT_RERAM_COSTS = ReRamStepCosts()


@dataclass(frozen=True)
class TransferCosts:
    """Off-chip data-movement costs for the CMOS SC baseline.

    CMOS designs must stream operand bytes from the (ReRAM) memory to the
    SC logic and push results back (the overhead "often overlooked in
    evaluations", Sec. I; Sec. IV-B: off-chip communication "significantly
    increases total energy consumption").  Modelled as a per-byte
    energy/latency over an off-chip DDR-class interface (~70 pJ/bit
    end-to-end including array access, I/O and on-chip distribution).
    """

    # ~160 pJ/bit effective: random-access bytes with poor spatial locality
    # pay the full activation + burst overhead per useful byte.
    e_per_byte: float = 1.3e-9
    t_per_byte: float = 0.5e-9       # ~2 GB/s effective per-stream bandwidth
    link_width_bytes: int = 8

    def energy(self, n_bytes: float) -> float:
        return self.e_per_byte * n_bytes

    def latency(self, n_bytes: float) -> float:
        return self.t_per_byte * n_bytes


DEFAULT_TRANSFER_COSTS = TransferCosts()
