"""Simplified NVMain-style trace-driven memory simulator.

The paper feeds operation traces of the SC flow into NVMain 2.0 to obtain
system-level latency and energy.  This module re-implements the part of that
methodology the evaluation needs: a multi-bank nonvolatile memory in which

* each bank executes its request stream in order,
* different banks run concurrently (the source of the pipelining the paper
  exploits across SC stages),
* explicit cross-bank dependencies serialise producer/consumer stages,
* every request is priced from :class:`~repro.energy.params.ReRamStepCosts`.

The simulator reports the makespan (critical path across banks), total
energy and per-bank utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .params import DEFAULT_RERAM_COSTS, ReRamStepCosts

__all__ = ["TraceRequest", "SimResult", "MemorySystem"]


@dataclass(frozen=True)
class TraceRequest:
    """One memory command in a trace.

    Attributes
    ----------
    bank:
        Target bank index.
    kind:
        'sense' | 'write' | 'latch' | 'adc' | 'read'.
    cells:
        Cells touched (sets energy; 'adc' uses it as conversion count).
    depends_on:
        Index of an earlier request (in the same trace list) that must
        complete first — used to serialise pipeline stages across banks.
    tag:
        Free-form label for reporting.
    """

    bank: int
    kind: str
    cells: int = 256
    depends_on: Optional[int] = None
    tag: str = ""


@dataclass
class SimResult:
    """Outcome of one trace simulation."""

    makespan_s: float
    energy_j: float
    finish_times: List[float]
    bank_busy_s: Dict[int, float]

    @property
    def makespan_ns(self) -> float:
        return self.makespan_s * 1e9

    @property
    def energy_nj(self) -> float:
        return self.energy_j * 1e9

    def utilisation(self) -> Dict[int, float]:
        """Busy fraction per bank over the makespan."""
        if self.makespan_s <= 0:
            return {b: 0.0 for b in self.bank_busy_s}
        return {b: t / self.makespan_s for b, t in self.bank_busy_s.items()}


class MemorySystem:
    """A bank-parallel, in-order-per-bank nonvolatile memory model."""

    def __init__(self, n_banks: int = 4,
                 costs: ReRamStepCosts = DEFAULT_RERAM_COSTS):
        if n_banks < 1:
            raise ValueError("need at least one bank")
        self.n_banks = n_banks
        self.costs = costs

    def _duration(self, req: TraceRequest) -> float:
        c = self.costs
        if req.kind in ("sense", "read"):
            return c.t_sense
        if req.kind == "write":
            return c.t_write
        if req.kind == "latch":
            return c.t_latch
        if req.kind == "adc":
            return c.t_adc * max(1, req.cells)
        raise ValueError(f"unknown request kind {req.kind!r}")

    def _energy(self, req: TraceRequest) -> float:
        c = self.costs
        if req.kind in ("sense", "read"):
            return c.sense_energy(req.cells)
        if req.kind == "write":
            return c.write_energy(req.cells)
        if req.kind == "latch":
            return c.e_latch_row * req.cells / c.row_width
        if req.kind == "adc":
            return c.e_adc * max(1, req.cells)
        raise ValueError(f"unknown request kind {req.kind!r}")

    def simulate(self, trace: Sequence[TraceRequest]) -> SimResult:
        """Run a trace to completion and return timing/energy totals."""
        bank_free = [0.0] * self.n_banks
        bank_busy: Dict[int, float] = {b: 0.0 for b in range(self.n_banks)}
        finish: List[float] = []
        energy = 0.0
        for i, req in enumerate(trace):
            if not 0 <= req.bank < self.n_banks:
                raise ValueError(f"request {i} targets bad bank {req.bank}")
            start = bank_free[req.bank]
            if req.depends_on is not None:
                if not 0 <= req.depends_on < i:
                    raise ValueError(
                        f"request {i} depends on invalid index {req.depends_on}")
                start = max(start, finish[req.depends_on])
            dur = self._duration(req)
            end = start + dur
            bank_free[req.bank] = end
            bank_busy[req.bank] += dur
            finish.append(end)
            energy += self._energy(req)
        makespan = max(finish) if finish else 0.0
        return SimResult(makespan_s=makespan, energy_j=energy,
                         finish_times=finish, bank_busy_s=bank_busy)
