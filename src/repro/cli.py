"""Command-line entry point: regenerate any table or figure from a shell.

Usage::

    python -m repro table1 [--samples 10000]
    python -m repro table2 [--samples 10000]
    python -m repro table3
    python -m repro table4 [--runs 2] [--size 32]
    python -m repro fig4
    python -m repro fig5
    python -m repro imsng
    python -m repro all
    python -m repro serve [--jobs N]
    python -m repro <target> --preset oracle     # paper-faithful oracles

Presets
-------
Every run is described by one :class:`repro.config.RunConfig`;
``--preset`` picks the base and the individual flags below override it
field-by-field:

* ``--preset fast`` (the default): packed word backend, batched
  ``column`` S-to-B readout, ``sparse`` Binomial fault masks, ``shm``
  scene transport — the release defaults.  Statistically equivalent to
  the oracles and much faster.
* ``--preset oracle``: the paper-faithful reference — ``per-bit``
  S-to-B cell sampling and ``dense`` Bernoulli fault masks.
  Reproduces the historical pinned quality numbers bit-exactly for a
  given seed.

Flags
-----
``--backend {unpacked,packed}`` picks the bit-stream execution backend
(default: the ``REPRO_BACKEND`` environment variable, falling back to
``packed``; both backends produce bit-identical streams).  ``--jobs N``
fans work across N worker processes wherever the target shards: the
Monte-Carlo tables (``table1``/``table2``, chunk-sharded through the
factory harness — the printed values are independent of N) and the
application table (``table4``, which additionally needs ``--tile T`` to
decompose each scene into ``T x T`` tiles with deterministic per-tile
seeds — see :mod:`repro.apps.executor`).  ``--cell-model`` and
``--fault-sampling`` override the preset's S-to-B device model and
fault-mask model for the SC application runs (see
:mod:`repro.imsc.stob` / :mod:`repro.imsc.engine`).

``serve`` starts the request-serving loop instead of printing a table: a
resident pool of ``--jobs`` worker processes behind a line-delimited JSON
protocol on stdin/stdout, scheduling concurrent tiled requests fair
round-robin with per-request output bit-identical to the batch
``run_tiled`` path (see :mod:`repro.serve`); the resolved config is its
serving default and is echoed by the ``stats`` request.

Prints ASCII renderings of the paper's tables/figures using the same
experiment runners the benchmark suite drives.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import experiments as ex
from .analysis.tables import render_table
from .config import RunConfig
from .core.backend import available_backends, set_backend

__all__ = ["main"]


def _print_table1(args, cfg: RunConfig) -> None:
    result = ex.table1_sng_mse(samples=args.samples, seed=cfg.seed,
                               jobs=cfg.jobs)
    lengths = ex.TABLE1_LENGTHS
    rows = [[label] + [row[n] for n in lengths]
            for label, row in result.items()]
    print(render_table(["RNG source"] + [f"N={n}" for n in lengths], rows,
                       title="Table I - MSE(%) of SBS generation",
                       precision=4))


def _print_table2(args, cfg: RunConfig) -> None:
    result = ex.table2_ops_mse(samples=args.samples, seed=cfg.seed,
                               jobs=cfg.jobs)
    lengths = ex.TABLE1_LENGTHS
    rows = []
    for op, sources in result.items():
        for src, series in sources.items():
            rows.append([op, src] + [series[n] for n in lengths])
    print(render_table(
        ["operation", "source"] + [f"N={n}" for n in lengths], rows,
        title="Table II - MSE(%) of SC operations", precision=4))


def _print_table3(args) -> None:
    result = ex.table3_hw_cost()
    rows = []
    for design, ops in result.items():
        for op, cost in ops.items():
            rows.append([design, op, cost["latency_ns"], cost["energy_nj"]])
    print(render_table(["design", "operation", "latency (ns)",
                        "energy (nJ)"], rows,
                       title="Table III - hardware cost (N = 256)"))


def _print_table4(args, cfg: RunConfig) -> None:
    result = ex.table4_quality(runs=args.runs, size=args.size, config=cfg)
    apps = ("compositing", "interpolation", "matting")
    rows = [[label] + [f"{v[a][0]:.1f}/{v[a][1]:.1f}" for a in apps]
            for label, v in result.items()]
    print(render_table(["design"] + list(apps), rows,
                       title="Table IV - SSIM(%)/PSNR(dB)"))
    drops = ex.quality_drop_summary(result)
    print(f"\naverage SSIM drop under faults: "
          f"SC {drops['sc_avg_ssim_drop_pct']:.1f}% vs binary CIM "
          f"{drops['bincim_avg_ssim_drop_pct']:.1f}%")


def _print_fig(which: str) -> None:
    result = ex.fig4_energy() if which == "fig4" else ex.fig5_throughput()
    metric = ("normalized energy savings" if which == "fig4"
              else "normalized throughput")
    lengths = ex.TABLE4_LENGTHS
    rows = []
    for app, designs in result.items():
        for design, series in designs.items():
            rows.append([app, design] + [series[n] for n in lengths])
    print(render_table(
        ["application", "design"] + [f"N={n}" for n in lengths], rows,
        title=f"{'Fig. 4' if which == 'fig4' else 'Fig. 5'} - {metric} "
              f"vs binary CIM", precision=2))


def _print_imsng(args) -> None:
    result = ex.imsng_variants()
    rows = [[k, v["latency_ns"], v["energy_nj"]] for k, v in result.items()]
    print(render_table(["variant", "latency (ns)", "energy (nJ)"], rows,
                       title="IMSNG conversion cost (Sec. IV-B)"))
    comp = ex.write_based_sng_comparison()
    rows = [[k, v["latency_ns"], v["energy_nj"], int(v["cell_writes"])]
            for k, v in comp.items()]
    print()
    print(render_table(["design", "latency (ns)", "energy (nJ)",
                        "cell writes"], rows,
                       title="Read-based vs write-based SBS generation"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'All-in-Memory Stochastic "
                    "Computing using ReRAM' (DAC 2025).")
    parser.add_argument("target",
                        choices=["table1", "table2", "table3", "table4",
                                 "fig4", "fig5", "imsng", "all", "serve"])
    parser.add_argument("--preset", choices=list(RunConfig.PRESETS),
                        default="fast",
                        help="base run configuration: 'fast' (default — "
                             "packed + column S-to-B + sparse fault "
                             "masks, the release defaults) or 'oracle' "
                             "(per-bit/dense — reproduces the paper's "
                             "historical pinned numbers bit-exactly); "
                             "the flags below override it field-by-field")
    parser.add_argument("--samples", type=int, default=10_000,
                        help="Monte-Carlo samples for tables I/II")
    parser.add_argument("--runs", type=int, default=2,
                        help="application runs to average for table IV")
    parser.add_argument("--size", type=int, default=32,
                        help="scene edge length for table IV")
    parser.add_argument("--seed", type=int, default=None,
                        help="root seed (default: the preset's, 0)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes: shards the Monte-Carlo "
                             "chunks of table1/table2, the tiled SC "
                             "application runs of table4 (requires "
                             "--tile), and sizes the resident pool of "
                             "'serve' (its default pool is 2); printed "
                             "values are independent of N")
    parser.add_argument("--tile", type=int, default=None,
                        help="tile edge length for sharded SC application "
                             "runs (table4); default: whole-image")
    parser.add_argument("--cell-model", choices=["per-bit", "column"],
                        default=None, dest="cell_model",
                        help="S-to-B device model for SC application runs "
                             "(table4), overriding the preset: 'per-bit' "
                             "samples every cell (the conformance "
                             "oracle), 'column' is the batched popcount "
                             "readout with cached per-column conductance "
                             "draws")
    parser.add_argument("--fault-sampling", choices=["dense", "sparse"],
                        default=None, dest="fault_sampling",
                        help="fault-mask sampling for faulty SC runs "
                             "(table4), overriding the preset: 'dense' is "
                             "the bit-exact per-site Bernoulli oracle, "
                             "'sparse' draws Binomial flip counts and "
                             "scatters the sites into the packed payload "
                             "(statistically conformant, much faster at "
                             "the paper's gate rates)")
    parser.add_argument("--fault-domain", choices=["word", "bit"],
                        default=None, dest="fault_domain",
                        help="fault-application domain for faulty SC runs "
                             "(table4), overriding the preset: 'word' "
                             "applies packed masks in the word domain "
                             "(default), 'bit' is the per-bit conformance "
                             "oracle (bit-identical per seed; requires "
                             "dense sampling, so combine it with "
                             "--fault-sampling dense)")
    parser.add_argument("--mp-context", choices=["fork", "forkserver",
                                                 "spawn"],
                        default=None, dest="mp_context",
                        help="multiprocessing start method for worker "
                             "pools (--jobs > 1 and 'serve'), overriding "
                             "the preset's pinned platform default; "
                             "results are start-method-invariant")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help="bit-stream execution backend (overrides the "
                             "preset and the REPRO_BACKEND environment "
                             "variable)")
    parser.add_argument("--transport", choices=["shm", "copy"],
                        default=None,
                        help="scene transport for 'serve', overriding the "
                             "preset: 'shm' ships each scene once through "
                             "the content-addressed shared-memory store "
                             "(tile tasks carry references; repeated "
                             "scenes are zero-byte cache hits), 'copy' "
                             "pickles tile slices per request; output is "
                             "bit-identical either way")
    args = parser.parse_args(argv)

    overrides = {key: value for key, value in
                 (("backend", args.backend), ("jobs", args.jobs),
                  ("tile", args.tile), ("cell_model", args.cell_model),
                  ("fault_sampling", args.fault_sampling),
                  ("fault_domain", args.fault_domain),
                  ("mp_context", args.mp_context),
                  ("transport", args.transport), ("seed", args.seed))
                 if value is not None}
    try:
        cfg = RunConfig.preset(args.preset, **overrides)
    except ValueError as exc:
        parser.error(str(exc))
    if cfg.jobs > 1 and args.target in ("table3", "fig4", "fig5", "imsng"):
        parser.error(f"--jobs does not apply to {args.target} (it shards "
                     "table1/table2/table4 and sizes the 'serve' pool)")
    if (args.target in ("table4", "all") and cfg.jobs > 1
            and cfg.tile is None):
        parser.error("--jobs > 1 requires --tile for the application "
                     "targets (whole-image runs are single-process)")
    if args.backend is not None:
        set_backend(args.backend)

    if args.target == "serve":
        from .serve import serve_stdio
        return serve_stdio(jobs=args.jobs, transport=args.transport,
                           config=cfg)
    if args.transport is not None:
        parser.error("--transport only applies to 'serve'")

    dispatch = {
        "table1": lambda: _print_table1(args, cfg),
        "table2": lambda: _print_table2(args, cfg),
        "table3": lambda: _print_table3(args),
        "table4": lambda: _print_table4(args, cfg),
        "fig4": lambda: _print_fig("fig4"),
        "fig5": lambda: _print_fig("fig5"),
        "imsng": lambda: _print_imsng(args),
    }
    if args.target == "all":
        for i, fn in enumerate(dispatch.values()):
            if i:
                print()
            fn()
    else:
        dispatch[args.target]()
    return 0


if __name__ == "__main__":   # pragma: no cover - exercised via __main__
    sys.exit(main())
