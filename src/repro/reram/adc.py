"""ADC model for in-memory stochastic-to-binary conversion.

The paper digitises the accumulated reference-column current with a single
8-bit SAR ADC per mat, citing the ISAAC accelerator's ADC design [37].  The
model captures the three effects that matter to application quality and cost:

* finite resolution (quantisation over the configured full-scale current);
* input-referred noise and static offset/gain error;
* per-conversion latency and energy for the cost model (ISAAC's 8-bit ADC:
  1.28 GS/s shared across columns; ~2 pJ per conversion at 32 nm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = ["AdcParams", "Adc", "ISAAC_ADC"]


@dataclass(frozen=True)
class AdcParams:
    """Static ADC characteristics."""

    bits: int = 8
    noise_sigma_lsb: float = 0.3
    offset_lsb: float = 0.0
    gain_error: float = 0.0
    t_conversion_s: float = 0.78e-9   # 1.28 GS/s SAR (ISAAC)
    e_conversion_j: float = 2.0e-12   # ~2 pJ per 8-bit conversion

    @property
    def levels(self) -> int:
        return (1 << self.bits) - 1


ISAAC_ADC = AdcParams()


class Adc:
    """Samples currents into digital codes.

    Parameters
    ----------
    params:
        Static characteristics.
    full_scale:
        Current mapped to the top code.  For S-to-B conversion this is the
        nominal current of ``N`` LRS cells driven at the read voltage, so a
        full-count stream lands on the top code.
    """

    def __init__(self, params: AdcParams = ISAAC_ADC, full_scale: float = 1.0,
                 rng: Union[np.random.Generator, int, None] = None):
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        self.params = params
        self.full_scale = full_scale
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self.conversions = 0

    def sample(self, currents: Union[float, np.ndarray]) -> np.ndarray:
        """Convert current(s) to integer codes in ``[0, 2**bits - 1]``.

        Scalar input yields a scalar code; array input preserves shape.
        """
        scalar = np.ndim(currents) == 0
        i = np.atleast_1d(np.asarray(currents, dtype=np.float64))
        self.conversions += i.size
        p = self.params
        lsb = self.full_scale / p.levels
        x = i * (1.0 + p.gain_error) / lsb + p.offset_lsb
        if p.noise_sigma_lsb > 0:
            x = x + self._gen.normal(0.0, p.noise_sigma_lsb, x.shape)
        codes = np.clip(np.rint(x), 0, p.levels).astype(np.int64)
        return codes[0] if scalar else codes

    def to_fraction(self, currents: Union[float, np.ndarray]) -> np.ndarray:
        """Codes scaled to ``[0, 1]`` (the recovered probability)."""
        return self.sample(currents) / float(self.params.levels)

    @property
    def total_latency_s(self) -> float:
        """Cumulative conversion time so far."""
        return self.conversions * self.params.t_conversion_s

    @property
    def total_energy_j(self) -> float:
        """Cumulative conversion energy so far."""
        return self.conversions * self.params.e_conversion_j
