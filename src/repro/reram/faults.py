"""CIM fault-rate derivation and fault injection.

The paper derives the probability of incorrect scouting-logic outputs from
the VCM resistance distributions (Sec. IV: "We conduct simulations with the
VCM-based ReRAM model to determine the distribution of LRS and HRS that
leads to the probability of obtaining incorrect outputs in CIM operation")
and then *injects* faults at the derived rates during application runs,
averaging many trials.  This module implements both halves:

* :func:`derive_fault_rates` — Monte-Carlo the analog scouting-logic path
  over freshly sampled cells for every input combination of each gate and
  return the per-gate error probability.
* :class:`BitFlipInjector` — vectorised Bernoulli bit-flip injection used by
  the in-memory engine (for SC streams) and by the binary CIM baseline (for
  binary words, where a flip's impact depends on bit significance — the root
  cause of the 47% quality collapse in Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .array import CrossbarArray
from .device import DEFAULT_DEVICE, DeviceParams
from .periphery import SenseAmp
from .scouting import ScoutingLogic

__all__ = [
    "GateFaultRates",
    "derive_fault_rates",
    "BitFlipInjector",
    "DEFAULT_FAULT_RATES",
]


def _ideal_gate(name: str, ins: Tuple[int, ...]) -> int:
    if name == "and":
        return int(all(ins))
    if name == "or":
        return int(any(ins))
    if name == "xor":
        return int(sum(ins) % 2)
    if name == "maj3":
        return int(sum(ins) >= 2)
    raise ValueError(f"unknown gate {name!r}")


@dataclass(frozen=True)
class GateFaultRates:
    """Per-gate CIM error probabilities (flip probability per output bit)."""

    and2: float
    or2: float
    xor2: float
    maj3: float
    read: float = 0.0

    def for_gate(self, name: str) -> float:
        table = {
            "and": self.and2, "nand": self.and2,
            "or": self.or2, "nor": self.or2,
            "xor": self.xor2, "xnor": self.xor2,
            "maj3": self.maj3,
            "not": self.read, "read": self.read,
        }
        if name not in table:
            raise ValueError(f"unknown gate {name!r}")
        return table[name]

    def mean(self) -> float:
        return float(np.mean([self.and2, self.or2, self.xor2, self.maj3]))

    def scaled(self, factor: float) -> "GateFaultRates":
        """Uniformly scale all rates (sensitivity sweeps)."""
        return GateFaultRates(
            and2=min(1.0, self.and2 * factor),
            or2=min(1.0, self.or2 * factor),
            xor2=min(1.0, self.xor2 * factor),
            maj3=min(1.0, self.maj3 * factor),
            read=min(1.0, self.read * factor),
        )


def derive_fault_rates(params: DeviceParams = DEFAULT_DEVICE,
                       trials_per_case: int = 4096,
                       sense_offset_sigma: float = 0.0,
                       seed: Optional[int] = 12345) -> GateFaultRates:
    """Monte-Carlo the scouting-logic error probability per gate type.

    For every gate and every input combination, fresh cells are programmed
    (sampling the programming distributions), read with read noise, and the
    sensed output is compared with Boolean truth.  The returned rate for a
    gate is the error probability averaged over uniformly weighted input
    combinations — matching how the injected fault model treats an op on
    random SC data.
    """
    rng = np.random.default_rng(seed)
    rates: Dict[str, float] = {}
    for name, arity in (("and", 2), ("or", 2), ("xor", 2), ("maj3", 3)):
        errors = 0
        total = 0
        array = CrossbarArray(rows=arity, cols=trials_per_case,
                              params=params, rng=rng)
        sl = ScoutingLogic(array, SenseAmp(sense_offset_sigma, rng))
        for ins in product((0, 1), repeat=arity):
            for r, bit in enumerate(ins):
                # Reprogram non-differentially so every trial resamples the
                # programming distribution across all columns.
                array.write_row(r, np.full(array.cols, bit, dtype=np.uint8),
                                differential=False)
            out = sl.gate(name, list(range(arity)))
            expected = _ideal_gate(name, ins)
            errors += int(np.count_nonzero(out != expected))
            total += array.cols
        rates[name] = errors / total
    return GateFaultRates(and2=rates["and"], or2=rates["or"],
                          xor2=rates["xor"], maj3=rates["maj3"])


# Rates derived once from the default VCM parameters (trials_per_case=65536,
# seed=12345); regenerate with derive_fault_rates() after parameter changes.
# XOR is the most fragile gate (window comparison, two margins), AND/MAJ
# share the tighter upper margin, OR enjoys the widest margin (all-HRS vs
# one-LRS, nearly two decades of separation).
DEFAULT_FAULT_RATES = GateFaultRates(
    and2=0.0050, or2=0.0001, xor2=0.0053, maj3=0.0050, read=0.0005,
)


class BitFlipInjector:
    """Vectorised Bernoulli bit-flip injector.

    Parameters
    ----------
    rate:
        Per-bit flip probability, or a :class:`GateFaultRates` whose
        per-gate value is selected at call time via ``gate=``.
    """

    def __init__(self, rate: Union[float, GateFaultRates],
                 rng: Union[np.random.Generator, int, None] = None):
        self.rate = rate
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))

    def _rate_for(self, gate: Optional[str]) -> float:
        if isinstance(self.rate, GateFaultRates):
            if gate is None:
                raise ValueError("gate name required with GateFaultRates")
            return self.rate.for_gate(gate)
        return float(self.rate)

    def inject(self, bits: np.ndarray, gate: Optional[str] = None) -> np.ndarray:
        """Return a copy of ``bits`` with i.i.d. flips at the gate's rate."""
        p = self._rate_for(gate)
        arr = np.asarray(bits, dtype=np.uint8)
        if p <= 0.0:
            return arr.copy()
        flips = self._gen.random(arr.shape) < p
        return (arr ^ flips.astype(np.uint8))

    def inject_words(self, words: np.ndarray, bits: int,
                     rate: Optional[float] = None) -> np.ndarray:
        """Flip bits inside binary integer words (binary CIM fault model).

        Every one of the ``bits`` positions of every word flips independently
        with the given probability; a flip at position ``k`` perturbs the
        value by ``2**k`` — the significance-dependent damage that SC avoids.
        """
        p = self._rate_for(None) if rate is None else rate
        arr = np.asarray(words, dtype=np.int64)
        if p <= 0.0:
            return arr.copy()
        out = arr.copy()
        for k in range(bits):
            flips = self._gen.random(arr.shape) < p
            out = out ^ (flips.astype(np.int64) << k)
        return out
