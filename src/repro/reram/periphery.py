"""ReRAM peripheral circuitry: sense amplifiers, latches, write drivers.

Models the modified periphery of Fig. 1c:

* :class:`SenseAmp` — compares a bitline current against a reference current
  ``Iref``; a configurable input-referred offset models comparator
  imperfection.  Scouting logic reuses this comparator with gate-specific
  references; the enhanced-SL XOR uses two of them as a window comparator.
* :class:`LatchPair` — the L0/L1 double latch in front of each write driver.
  Nonvolatile memories use these for differential writes (L0 = data to
  write, L1 = modify flag).  The paper's IMSNG-opt repurposes them to hold
  the running flag bit and implement the flag AND as *predicated sensing*,
  eliminating intermediate writes.
* :class:`WriteDriver` — conditional write pulses driven by the latch pair;
  also provides the *feedback* path (latched sense output re-applied as a
  bitline voltage) that IMSNG-naive uses to forward intermediate logic
  results without programming cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = ["SenseAmp", "LatchPair", "WriteDriver"]


class SenseAmp:
    """Current-mode sense amplifier with input-referred offset noise.

    Parameters
    ----------
    offset_sigma:
        Standard deviation of the comparator offset, in amperes.  Drawn per
        comparison; set to 0 for an ideal comparator.
    """

    def __init__(self, offset_sigma: float = 0.0,
                 rng: Union[np.random.Generator, int, None] = None):
        if offset_sigma < 0:
            raise ValueError("offset_sigma must be >= 0")
        self.offset_sigma = offset_sigma
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))

    def compare(self, currents: np.ndarray, iref: float) -> np.ndarray:
        """Output 1 where ``current > iref`` (plus offset noise)."""
        i = np.asarray(currents, dtype=np.float64)
        if self.offset_sigma > 0.0:
            i = i + self._gen.normal(0.0, self.offset_sigma, i.shape)
        return (i > iref).astype(np.uint8)

    def window(self, currents: np.ndarray, iref_low: float,
               iref_high: float) -> np.ndarray:
        """Window comparison: 1 where ``iref_low < current <= iref_high``.

        Implements the two-reference (enhanced scouting logic) XOR: exactly
        one of two activated cells in LRS lands between the OR and AND
        thresholds.
        """
        low = self.compare(currents, iref_low)
        high = self.compare(currents, iref_high)
        return (low & (1 - high)).astype(np.uint8)


class LatchPair:
    """The L0/L1 latch pair attached to each bitline's write driver.

    ``data`` (L0) holds the value to be written or forwarded; ``flag`` (L1)
    holds the modify/predicate bit.  ``predicated_store`` implements the
    IMSNG-opt trick: the incoming sensed value is ANDed with the flag inside
    the latch, with no array access.
    """

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("latch width must be >= 1")
        self.width = width
        self.data = np.zeros(width, dtype=np.uint8)
        self.flag = np.ones(width, dtype=np.uint8)

    def load_data(self, bits: np.ndarray) -> None:
        self.data = self._coerce(bits)

    def load_flag(self, bits: np.ndarray) -> None:
        self.flag = self._coerce(bits)

    def predicated_store(self, sensed: np.ndarray) -> np.ndarray:
        """Store ``sensed AND flag`` into L0 and return it."""
        self.data = self._coerce(sensed) & self.flag
        return self.data.copy()

    def update_flag_and_not(self, sensed: np.ndarray) -> np.ndarray:
        """Flag <- Flag AND NOT(sensed): the running prefix-equality bit."""
        self.flag = self.flag & (1 - self._coerce(sensed))
        return self.flag.copy()

    def _coerce(self, bits: np.ndarray) -> np.ndarray:
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (self.width,):
            raise ValueError(f"expected width {self.width}, got {arr.shape}")
        return arr


@dataclass
class WriteDriver:
    """Write driver fed by a :class:`LatchPair`.

    ``feedback_voltage`` converts latched logic values into bitline voltages,
    mimicking the voltage drop the cell would have produced had the value
    been written — the mechanism that lets one logic op's output feed the
    next op's input without an intermediate array write.
    """

    latch: LatchPair
    v_high: float = 0.2
    v_low: float = 0.0

    def differential_mask(self, stored: np.ndarray) -> np.ndarray:
        """Cells that need a pulse: latched data differs from stored data."""
        stored = np.asarray(stored, dtype=np.uint8)
        return (self.latch.data != stored).astype(np.uint8)

    def feedback_voltage(self) -> np.ndarray:
        """Per-bitline voltages reproducing the latched logic values."""
        return np.where(self.latch.data == 1, self.v_high, self.v_low)
