"""Behavioural VCM ReRAM device model.

Models the aspects of a valence-change-mechanism (VCM) ReRAM cell that the
paper's evaluation depends on:

* **Resistance distributions.**  The high-resistance state (HRS) and
  low-resistance state (LRS) are log-normally distributed across cells and
  programming events; the HRS distribution is markedly wider ("HRS
  instability", Wiefels et al., IEEE TED 2020).  Distribution overlap is what
  makes multi-row scouting-logic reads fail, which is the source of the CIM
  fault rates used in Table IV.
* **Read noise.**  Each read sees a multiplicative log-normal fluctuation of
  the programmed resistance (random telegraph / 1/f noise).  Biased reads of
  a cell programmed near the sensing boundary are the entropy source of the
  read-noise TRNG (Schnieders et al. 2024), modelled in
  :mod:`repro.reram.trng`.
* **Switching stochasticity.**  The probability that a SET/RESET pulse
  actually switches the cell follows a sigmoid in pulse voltage/width; this
  is the (slow, endurance-hungry) entropy source used by prior work such as
  SCRIMP, kept for comparison.

All randomness flows through an explicit ``numpy.random.Generator`` so
experiments are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np

__all__ = ["DeviceParams", "ReRamDevice", "DEFAULT_DEVICE"]


@dataclass(frozen=True)
class DeviceParams:
    """Electrical and statistical parameters of one ReRAM cell.

    Resistances are in ohms; ``*_sigma`` values are the standard deviations
    of ``ln(R)`` (log-normal shape parameters).  Defaults are representative
    of filamentary HfO2 VCM cells: LRS around 10 kOhm with tight spread, HRS
    around 500 kOhm with a wide, unstable tail.
    """

    lrs_mean: float = 10e3
    lrs_sigma: float = 0.15
    hrs_mean: float = 500e3
    hrs_sigma: float = 0.45
    read_voltage: float = 0.2
    read_noise_sigma: float = 0.06
    # Switching dynamics (SET direction): P(switch) is a logistic function of
    # pulse voltage centred on v_set50 with slope v_set_slope.
    v_set50: float = 1.4
    v_set_slope: float = 0.08
    v_reset50: float = -1.3
    v_reset_slope: float = 0.09
    write_endurance: float = 1e7

    @property
    def g_lrs(self) -> float:
        """Median LRS conductance (siemens)."""
        return 1.0 / self.lrs_mean

    @property
    def g_hrs(self) -> float:
        """Median HRS conductance (siemens)."""
        return 1.0 / self.hrs_mean

    def scaled(self, **overrides) -> "DeviceParams":
        """Return a copy with selected fields replaced (for sweeps)."""
        return replace(self, **overrides)


DEFAULT_DEVICE = DeviceParams()


class ReRamDevice:
    """Samples per-cell electrical behaviour from :class:`DeviceParams`."""

    def __init__(self, params: DeviceParams = DEFAULT_DEVICE,
                 rng: Union[np.random.Generator, int, None] = None):
        self.params = params
        self.rng = (rng if isinstance(rng, np.random.Generator)
                    else np.random.default_rng(rng))

    # ------------------------------------------------------------------
    # Resistance statistics
    # ------------------------------------------------------------------
    def sample_resistance(self, states: np.ndarray) -> np.ndarray:
        """Draw programmed resistances for an array of logic states.

        ``states`` holds 0 (HRS) / 1 (LRS); the result has the same shape,
        with each cell drawn independently from its state's log-normal.
        """
        states = np.asarray(states)
        ln_mean = np.where(states == 1,
                           math.log(self.params.lrs_mean),
                           math.log(self.params.hrs_mean))
        ln_sigma = np.where(states == 1,
                            self.params.lrs_sigma,
                            self.params.hrs_sigma)
        return np.exp(self.rng.normal(ln_mean, ln_sigma))

    def read_conductance(self, resistance: np.ndarray) -> np.ndarray:
        """One read of the given programmed resistances, with read noise."""
        noise = np.exp(self.rng.normal(
            0.0, self.params.read_noise_sigma, np.shape(resistance)))
        return 1.0 / (np.asarray(resistance) * noise)

    def read_current(self, resistance: np.ndarray,
                     voltage: Optional[float] = None) -> np.ndarray:
        """Read current (A) at the sensing voltage, with read noise."""
        v = self.params.read_voltage if voltage is None else voltage
        return v * self.read_conductance(resistance)

    # ------------------------------------------------------------------
    # Switching stochasticity
    # ------------------------------------------------------------------
    def set_probability(self, voltage: float) -> float:
        """Probability a SET pulse of ``voltage`` switches HRS -> LRS."""
        z = (voltage - self.params.v_set50) / self.params.v_set_slope
        return float(1.0 / (1.0 + math.exp(-z)))

    def reset_probability(self, voltage: float) -> float:
        """Probability a RESET pulse of ``voltage`` switches LRS -> HRS."""
        z = (self.params.v_reset50 - voltage) / self.params.v_reset_slope
        return float(1.0 / (1.0 + math.exp(-z)))

    def stochastic_set(self, shape, voltage: Optional[float] = None) -> np.ndarray:
        """Apply probabilistic SET pulses; returns switched bits (0/1).

        At ``voltage = v_set50`` each pulse switches with probability 0.5 —
        the write-based entropy source used by SCRIMP-style designs.
        """
        v = self.params.v_set50 if voltage is None else voltage
        p = self.set_probability(v)
        return (self.rng.random(shape) < p).astype(np.uint8)

    # ------------------------------------------------------------------
    # Sensing margins
    # ------------------------------------------------------------------
    def single_ref_current(self) -> float:
        """Reference current separating HRS from LRS for a 1-row read."""
        v = self.params.read_voltage
        g_mid = math.sqrt(self.params.g_lrs * self.params.g_hrs)
        return v * g_mid
