"""Array controller: row allocation and command issue for in-memory SC.

The controller owns one crossbar array and exposes the abstraction the
in-memory SC engine programs against (Fig. 1a): named row regions for input
binary data, in-memory random numbers and generated bit-streams, plus a
command log every issued operation appends to.  The energy model replays the
command log against a parameter set to produce latency/energy totals, in the
spirit of the paper's NVMain-based methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .array import CrossbarArray
from .periphery import LatchPair, SenseAmp
from .scouting import ScoutingLogic

__all__ = ["Command", "RowRegion", "ArrayController"]


@dataclass(frozen=True)
class Command:
    """One issued array command, as recorded in the trace."""

    kind: str                 # 'read' | 'write' | 'sl' | 'adc' | 'latch'
    gate: Optional[str] = None
    rows: Tuple[int, ...] = ()
    cells: int = 0


@dataclass
class RowRegion:
    """A named, contiguous row range inside the array."""

    name: str
    start: int
    size: int

    def row(self, offset: int) -> int:
        if not 0 <= offset < self.size:
            raise IndexError(
                f"offset {offset} outside region {self.name!r} of {self.size}")
        return self.start + offset


class ArrayController:
    """Issues reads/writes/scouting ops on one array and logs them.

    Parameters
    ----------
    array:
        Backing crossbar.
    regions:
        Mapping of region name to row count; regions are packed from row 0
        in insertion order.  A typical IMSNG layout is
        ``{"data": 8, "rand": 8, "sbs": 16, "work": 4}``.
    """

    def __init__(self, array: CrossbarArray,
                 regions: Optional[Dict[str, int]] = None,
                 sense_amp: Optional[SenseAmp] = None):
        self.array = array
        self.sl = ScoutingLogic(array, sense_amp)
        self.latches = LatchPair(array.cols)
        self.trace: List[Command] = []
        self.regions: Dict[str, RowRegion] = {}
        next_row = 0
        for name, size in (regions or {}).items():
            if next_row + size > array.rows:
                raise ValueError(
                    f"region {name!r} overflows array ({array.rows} rows)")
            self.regions[name] = RowRegion(name, next_row, size)
            next_row += size

    # ------------------------------------------------------------------
    # Region helpers
    # ------------------------------------------------------------------
    def region(self, name: str) -> RowRegion:
        if name not in self.regions:
            raise KeyError(f"no region {name!r}")
        return self.regions[name]

    def row(self, region: str, offset: int) -> int:
        return self.region(region).row(offset)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def write_row(self, row: int, bits: np.ndarray) -> None:
        switched = self.array.write_row(row, bits)
        self.trace.append(Command("write", rows=(row,), cells=switched))

    def read_row(self, row: int) -> np.ndarray:
        out = self.array.read_row(row)
        self.trace.append(Command("read", rows=(row,), cells=self.array.cols))
        return out

    def sl_op(self, gate: str, rows: Sequence[int]) -> np.ndarray:
        out = self.sl.gate(gate, rows)
        self.trace.append(
            Command("sl", gate=gate, rows=tuple(rows), cells=self.array.cols))
        return out

    def latch_op(self) -> None:
        """Record a periphery-only latch cycle (no array access)."""
        self.trace.append(Command("latch", cells=self.array.cols))

    # ------------------------------------------------------------------
    # Trace summaries
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Command counts by kind (plus per-gate SL counts)."""
        out: Dict[str, int] = {}
        for cmd in self.trace:
            out[cmd.kind] = out.get(cmd.kind, 0) + 1
            if cmd.kind == "sl" and cmd.gate:
                key = f"sl_{cmd.gate}"
                out[key] = out.get(key, 0) + 1
        return out

    def reset_trace(self) -> None:
        self.trace.clear()
