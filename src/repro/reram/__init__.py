"""Behavioural ReRAM substrate: device, array, scouting logic, TRNG, ADC."""

from .device import DEFAULT_DEVICE, DeviceParams, ReRamDevice
from .array import ArrayStats, CrossbarArray
from .periphery import LatchPair, SenseAmp, WriteDriver
from .scouting import SL_GATES, ScoutingLogic
from .trng import ReRamTrng, WriteTrng, bit_statistics, von_neumann_debias
from .adc import Adc, AdcParams, ISAAC_ADC
from .faults import (
    BitFlipInjector,
    DEFAULT_FAULT_RATES,
    GateFaultRates,
    derive_fault_rates,
)
from .controller import ArrayController, Command, RowRegion
from .wear import RotatingRowAllocator, WearReport, wear_report

__all__ = [
    "DEFAULT_DEVICE", "DeviceParams", "ReRamDevice",
    "ArrayStats", "CrossbarArray",
    "LatchPair", "SenseAmp", "WriteDriver",
    "SL_GATES", "ScoutingLogic",
    "ReRamTrng", "WriteTrng", "bit_statistics", "von_neumann_debias",
    "Adc", "AdcParams", "ISAAC_ADC",
    "BitFlipInjector", "DEFAULT_FAULT_RATES", "GateFaultRates",
    "derive_fault_rates",
    "ArrayController", "Command", "RowRegion",
    "RotatingRowAllocator", "WearReport", "wear_report",
]
