"""ReRAM true random number generation.

Two physical entropy sources are modelled:

* :class:`ReRamTrng` — **read-noise TRNG** (Schnieders et al. 2024; Woo et
  al. 2019): a cell programmed near the sensing boundary is read repeatedly;
  read noise makes the comparator output flip randomly.  Reads are cheap and
  endurance-free, which is why the paper builds IMSNG on this source.  The
  raw bit-stream has a bias set by how precisely the cell sits on the
  boundary, plus a small lag-1 correlation from slow noise components; an
  optional von Neumann corrector trades throughput for unbiased output.

* :class:`WriteTrng` — **switching-stochasticity TRNG** (SCRIMP and prior
  work): pulse a cell at the 50%-switching voltage and read whether it
  flipped.  Each bit costs a RESET + SET-attempt + read, which is slow and
  wears the cell out — the cost model exposes exactly why the paper avoids
  it.

Both implement the :class:`repro.core.sng.BitSource` interface so they plug
straight into :class:`repro.core.sng.SegmentSng` and the in-memory IMSNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.sng import BitSource
from .device import DEFAULT_DEVICE, DeviceParams

__all__ = ["ReRamTrng", "WriteTrng", "von_neumann_debias", "bit_statistics"]


def von_neumann_debias(bits: np.ndarray) -> np.ndarray:
    """Von Neumann corrector: map bit pairs 01 -> 0, 10 -> 1, drop 00/11.

    Removes bias exactly (for independent bits) at the cost of keeping only
    ``2 p (1 - p)`` of the input pairs.
    """
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size % 2:
        arr = arr[:-1]
    pairs = arr.reshape(-1, 2)
    keep = pairs[:, 0] != pairs[:, 1]
    return pairs[keep, 1].copy()


def bit_statistics(bits: np.ndarray) -> dict:
    """Simple randomness health checks: bias, lag-1 autocorrelation, runs.

    A lightweight stand-in for the NIST SP 800-22 frequency / runs tests,
    sufficient to characterise the modelled entropy sources.
    """
    arr = np.asarray(bits, dtype=np.float64).ravel()
    n = arr.size
    if n < 2:
        raise ValueError("need at least 2 bits")
    p1 = float(arr.mean())
    centred = arr - p1
    denom = float(np.sum(centred * centred))
    lag1 = float(np.sum(centred[:-1] * centred[1:]) / denom) if denom > 0 else 0.0
    runs = 1 + int(np.count_nonzero(np.diff(arr)))
    # Expected number of runs for an i.i.d. sequence with this bias.
    expected_runs = 1 + 2 * n * p1 * (1 - p1)
    return {
        "bias": p1 - 0.5,
        "ones_fraction": p1,
        "lag1_autocorr": lag1,
        "runs": runs,
        "runs_expected": expected_runs,
    }


@dataclass(frozen=True)
class TrngCost:
    """Per-bit generation cost of an entropy source."""

    latency_s: float
    energy_j: float
    cell_writes: float


class ReRamTrng(BitSource):
    """Read-noise TRNG harvesting one bit per (cheap) read.

    Parameters
    ----------
    params:
        Device parameters (read latency/energy are taken from the energy
        model at accounting time; here only statistical behaviour matters).
    bias:
        Residual probability offset of the raw source, ``P(1) = 0.5 + bias``.
        Reflects imperfect tuning of the cell onto the sensing boundary;
        a few permille is typical after calibration.
    autocorr:
        Lag-1 autocorrelation from slow (1/f) noise components.
    debias:
        Apply the von Neumann corrector (halves-to-quarters throughput,
        removes bias).
    """

    def __init__(self, params: DeviceParams = DEFAULT_DEVICE,
                 bias: float = 0.004, autocorr: float = 0.01,
                 debias: bool = False,
                 rng: Union[np.random.Generator, int, None] = None):
        self.params = params
        self.bias = bias
        self.autocorr = autocorr
        self.debias = debias
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self.bits_generated = 0
        self.reads_issued = 0

    def _raw_bits(self, count: int) -> np.ndarray:
        p1 = 0.5 + self.bias
        bits = (self._gen.random(count) < p1).astype(np.uint8)
        rho = self.autocorr
        if rho != 0.0 and count > 1:
            # First-order Markov mixing: with prob |rho|, repeat previous bit.
            copy = self._gen.random(count - 1) < abs(rho)
            for i in np.flatnonzero(copy):
                bits[i + 1] = bits[i] if rho > 0 else 1 - bits[i]
        return bits

    def random_bits(self, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be >= 0")
        if not self.debias:
            self.reads_issued += count
            self.bits_generated += count
            return self._raw_bits(count)
        out = np.empty(0, dtype=np.uint8)
        while out.size < count:
            chunk = max(4 * (count - out.size), 64)
            raw = self._raw_bits(chunk)
            self.reads_issued += chunk
            out = np.concatenate([out, von_neumann_debias(raw)])
        self.bits_generated += count
        return out[:count]

    def cost_per_bit(self, t_read_s: float, e_read_j: float) -> TrngCost:
        """Average per-output-bit cost given per-read latency/energy."""
        if self.debias:
            # A pair of reads yields one bit with prob 2p(1-p).
            p = 0.5 + self.bias
            reads_per_bit = 2.0 / (2.0 * p * (1.0 - p))
        else:
            reads_per_bit = 1.0
        return TrngCost(latency_s=reads_per_bit * t_read_s,
                        energy_j=reads_per_bit * e_read_j,
                        cell_writes=0.0)


class WriteTrng(BitSource):
    """Switching-stochasticity TRNG: one bit per RESET + probabilistic SET.

    The entropy source of SCRIMP-style designs.  Every output bit consumes
    two write pulses (RESET to a known state, then a SET attempt at the
    50%-probability voltage) plus a read — slow, energy-hungry, and it wears
    out the cell, which is precisely the drawback the paper's IMSNG removes.
    """

    def __init__(self, params: DeviceParams = DEFAULT_DEVICE,
                 voltage: Optional[float] = None,
                 rng: Union[np.random.Generator, int, None] = None):
        self.params = params
        self.voltage = params.v_set50 if voltage is None else voltage
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        z = (self.voltage - params.v_set50) / params.v_set_slope
        self._p_switch = 1.0 / (1.0 + np.exp(-z))
        self.bits_generated = 0

    def random_bits(self, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be >= 0")
        self.bits_generated += count
        return (self._gen.random(count) < self._p_switch).astype(np.uint8)

    def cost_per_bit(self, t_write_s: float, e_write_j: float,
                     t_read_s: float, e_read_j: float) -> TrngCost:
        """Two write pulses plus one verifying read per bit."""
        return TrngCost(
            latency_s=2.0 * t_write_s + t_read_s,
            energy_j=2.0 * e_write_j + e_read_j,
            cell_writes=2.0,
        )
