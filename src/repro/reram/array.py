"""1T1R ReRAM crossbar array model.

The array stores logic states in a 2-D grid of cells (wordlines x bitlines,
Fig. 1a of the paper).  Each cell's programmed resistance is drawn from the
device model at write time and redrawn on every reprogramming event, so
cycle-to-cycle variability is captured.  Reads apply read noise on top.

The array tracks operation statistics (row reads, row writes, multi-row
sensing activations and per-cell write counts) that the energy model and the
endurance analysis consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .device import DEFAULT_DEVICE, DeviceParams, ReRamDevice

__all__ = ["ArrayStats", "CrossbarArray"]


@dataclass
class ArrayStats:
    """Operation counters for one crossbar array."""

    row_reads: int = 0
    row_writes: int = 0
    multi_row_activations: int = 0
    cells_written: int = 0

    def merged(self, other: "ArrayStats") -> "ArrayStats":
        return ArrayStats(
            row_reads=self.row_reads + other.row_reads,
            row_writes=self.row_writes + other.row_writes,
            multi_row_activations=self.multi_row_activations
            + other.multi_row_activations,
            cells_written=self.cells_written + other.cells_written,
        )


class CrossbarArray:
    """A rows x cols 1T1R array with per-cell sampled resistances.

    Parameters
    ----------
    rows, cols:
        Array geometry.  The paper's mats are 256-column rows; bit-streams
        are laid out one per row (one bit per column) so bulk-bitwise logic
        operates on whole streams at once.
    device:
        Cell model supplying resistance distributions and read noise.
    rng:
        Generator (or seed) for all stochastic behaviour of this array.
    """

    def __init__(self, rows: int, cols: int,
                 device: Optional[ReRamDevice] = None,
                 params: DeviceParams = DEFAULT_DEVICE,
                 rng: Union[np.random.Generator, int, None] = None):
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.rows = rows
        self.cols = cols
        self.device = device if device is not None else ReRamDevice(params, gen)
        self._states = np.zeros((rows, cols), dtype=np.uint8)
        self._resistance = self.device.sample_resistance(self._states)
        self._write_counts = np.zeros((rows, cols), dtype=np.int64)
        self.stats = ArrayStats()

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    @property
    def states(self) -> np.ndarray:
        """Logic contents (read-only view); 0 = HRS, 1 = LRS."""
        view = self._states.view()
        view.flags.writeable = False
        return view

    @property
    def resistances(self) -> np.ndarray:
        """Currently programmed per-cell resistances (read-only view)."""
        view = self._resistance.view()
        view.flags.writeable = False
        return view

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} outside [0, {self.rows})")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write_row(self, row: int, bits: Sequence[int],
                  differential: bool = True) -> int:
        """Program one row; returns the number of cells actually switched.

        With ``differential=True`` (the standard double-latch write driver,
        Fig. 1c) only cells whose new datum differs from the stored one are
        pulsed — this is what the endurance accounting and write energy
        scale with.
        """
        self._check_row(row)
        data = np.asarray(bits, dtype=np.uint8)
        if data.shape != (self.cols,):
            raise ValueError(f"expected {self.cols} bits, got {data.shape}")
        if data.size and data.max() > 1:
            raise ValueError("row data must be 0/1")
        if differential:
            changed = data != self._states[row]
        else:
            changed = np.ones(self.cols, dtype=bool)
        if np.any(changed):
            self._states[row, changed] = data[changed]
            self._resistance[row, changed] = self.device.sample_resistance(
                data[changed])
            self._write_counts[row, changed] += 1
        self.stats.row_writes += 1
        n_switched = int(np.count_nonzero(changed))
        self.stats.cells_written += n_switched
        return n_switched

    def write_block(self, first_row: int, data: np.ndarray) -> None:
        """Program consecutive rows from a 2-D 0/1 array."""
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[1] != self.cols:
            raise ValueError("block shape must be (k, cols)")
        for i in range(data.shape[0]):
            self.write_row(first_row + i, data[i])

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_row(self, row: int, ideal: bool = False) -> np.ndarray:
        """Single-row read through the sense amplifiers.

        A normal read has effectively full margin (single-cell HRS/LRS
        separation is orders of magnitude), so it returns the stored state;
        ``ideal=False`` still draws the noisy current so marginal cells can
        misread under extreme parameter settings.
        """
        self._check_row(row)
        self.stats.row_reads += 1
        if ideal:
            return self._states[row].copy()
        current = self.device.read_current(self._resistance[row])
        iref = self.device.single_ref_current()
        return (current > iref).astype(np.uint8)

    def bitline_currents(self, rows: Iterable[int]) -> np.ndarray:
        """Noisy summed bitline currents for a multi-row activation.

        This is the raw analog quantity scouting logic thresholds: each
        activated cell contributes ``V_read * G_cell`` and the per-column
        currents add on the shared bitline.
        """
        idx = list(rows)
        for r in idx:
            self._check_row(r)
        if not idx:
            raise ValueError("need at least one activated row")
        self.stats.multi_row_activations += 1
        currents = self.device.read_current(self._resistance[idx])
        return currents.sum(axis=0)

    def reference_column_current(self, col: int, voltages: np.ndarray) -> float:
        """Current accumulated on one column driven by per-row voltages.

        Models the in-memory S-to-B step (Sec. III-C): the output bit-stream
        is applied as wordline voltages to a column of LRS-programmed cells;
        the summed current is proportional to the stream's popcount.
        """
        if not 0 <= col < self.cols:
            raise IndexError(f"column {col} outside [0, {self.cols})")
        v = np.asarray(voltages, dtype=np.float64)
        if v.shape != (self.rows,):
            raise ValueError(f"expected {self.rows} voltages")
        g = self.device.read_conductance(self._resistance[:, col])
        self.stats.multi_row_activations += 1
        return float(np.sum(v * g))

    # ------------------------------------------------------------------
    # Endurance
    # ------------------------------------------------------------------
    @property
    def max_cell_writes(self) -> int:
        """Largest per-cell write count (endurance hot spot)."""
        return int(self._write_counts.max())

    def endurance_fraction_used(self) -> float:
        """Fraction of rated endurance consumed by the hottest cell."""
        return self.max_cell_writes / self.device.params.write_endurance
