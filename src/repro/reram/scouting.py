"""Scouting logic (SL): bulk-bitwise Boolean operations by multi-row reads.

Scouting logic (Xie et al., ISVLSI'17) activates two or more wordlines at
once; the summed current of the selected cells on each bitline is compared
against a gate-specific reference current:

* ``AND(k)`` — output 1 only when all ``k`` cells are LRS: the reference sits
  between the ``k-1``-LRS and ``k``-LRS current levels;
* ``OR(k)``  — output 1 when at least one cell is LRS: reference between the
  all-HRS and 1-LRS levels;
* ``MAJ3``   — at-least-2-of-3: *the same reference as the 2-input AND*, the
  observation the paper uses to turn MUX-based scaled addition into a
  single-cycle in-memory op;
* ``XOR``    — exactly-one-of-two, sensed with two references (enhanced SL).

Because cell resistances and read noise are sampled from the device model,
the SL output is *naturally* faulty when distributions overlap — no fault
rate is assumed; it emerges from the physics parameters.  The closed-form /
Monte-Carlo fault-rate derivation lives in :mod:`repro.reram.faults`.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .array import CrossbarArray
from .periphery import SenseAmp

__all__ = ["ScoutingLogic", "SL_GATES"]

SL_GATES = ("and", "or", "xor", "nand", "nor", "xnor", "maj3", "not")


class ScoutingLogic:
    """Executes scouting-logic gates on a :class:`CrossbarArray`.

    Parameters
    ----------
    array:
        Backing crossbar holding the operand rows.
    sense_amp:
        Comparator model; defaults to an ideal (offset-free) SA, matching
        the paper's assumption that variability, not the comparator,
        dominates errors.
    """

    def __init__(self, array: CrossbarArray, sense_amp: SenseAmp = None):
        self.array = array
        self.sense_amp = sense_amp if sense_amp is not None else SenseAmp()
        self._level_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Reference currents
    # ------------------------------------------------------------------
    def current_levels(self, k: int) -> np.ndarray:
        """Nominal bitline current for j of k activated cells in LRS."""
        if k not in self._level_cache:
            p = self.array.device.params
            v = p.read_voltage
            j = np.arange(k + 1, dtype=np.float64)
            self._level_cache[k] = v * (j * p.g_lrs + (k - j) * p.g_hrs)
        return self._level_cache[k]

    def reference(self, k: int, threshold: int) -> float:
        """Reference current detecting 'at least ``threshold`` of ``k`` high'.

        Placed at the midpoint between the ``threshold-1`` and ``threshold``
        nominal current levels.
        """
        if not 1 <= threshold <= k:
            raise ValueError("threshold must be in [1, k]")
        levels = self.current_levels(k)
        return float((levels[threshold - 1] + levels[threshold]) / 2.0)

    # ------------------------------------------------------------------
    # Gate execution
    # ------------------------------------------------------------------
    def _currents(self, rows: Sequence[int]) -> np.ndarray:
        return self.array.bitline_currents(rows)

    def and_(self, rows: Sequence[int]) -> np.ndarray:
        """k-input AND across the given rows (one output bit per column)."""
        k = len(rows)
        return self.sense_amp.compare(self._currents(rows), self.reference(k, k))

    def or_(self, rows: Sequence[int]) -> np.ndarray:
        """k-input OR across the given rows."""
        k = len(rows)
        return self.sense_amp.compare(self._currents(rows), self.reference(k, 1))

    def maj3(self, rows: Sequence[int]) -> np.ndarray:
        """3-input majority using the 2-input AND reference (Sec. III-B)."""
        if len(rows) != 3:
            raise ValueError("maj3 needs exactly 3 rows")
        return self.sense_amp.compare(self._currents(rows), self.reference(3, 2))

    def xor(self, rows: Sequence[int]) -> np.ndarray:
        """2-input XOR via a two-reference window comparison (enhanced SL)."""
        if len(rows) != 2:
            raise ValueError("xor needs exactly 2 rows")
        i = self._currents(rows)
        return self.sense_amp.window(i, self.reference(2, 1), self.reference(2, 2))

    def nand(self, rows: Sequence[int]) -> np.ndarray:
        return (1 - self.and_(rows)).astype(np.uint8)

    def nor(self, rows: Sequence[int]) -> np.ndarray:
        return (1 - self.or_(rows)).astype(np.uint8)

    def xnor(self, rows: Sequence[int]) -> np.ndarray:
        return (1 - self.xor(rows)).astype(np.uint8)

    def not_(self, row: int) -> np.ndarray:
        """NOT: single-row read with inverted sense-amp output."""
        return (1 - self.array.read_row(row)).astype(np.uint8)

    def gate(self, name: str, rows: Sequence[int]) -> np.ndarray:
        """Dispatch by gate name (one of :data:`SL_GATES`)."""
        table = {
            "and": self.and_, "or": self.or_, "xor": self.xor,
            "nand": self.nand, "nor": self.nor, "xnor": self.xnor,
            "maj3": self.maj3,
        }
        if name == "not":
            if len(rows) != 1:
                raise ValueError("not takes one row")
            return self.not_(rows[0])
        if name not in table:
            raise ValueError(f"unknown SL gate {name!r}")
        return table[name](rows)
