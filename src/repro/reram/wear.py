"""Endurance tracking and wear levelling for SBS rows.

ReRAM cells endure a bounded number of programming cycles (~1e6..1e9
depending on technology).  The paper's argument against write-based SBS
generation is endurance; this module provides the complementary machinery
for the remaining writes the in-memory flow *does* perform (result rows and
TRNG refills): a wear tracker and a rotating row allocator that spreads
those writes across a region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .array import CrossbarArray

__all__ = ["WearReport", "RotatingRowAllocator", "wear_report"]


@dataclass(frozen=True)
class WearReport:
    """Summary of per-cell write wear for an array."""

    max_writes: int
    mean_writes: float
    hottest_row: int
    endurance_fraction: float
    lifetime_conversions: float

    def __str__(self) -> str:   # pragma: no cover - cosmetic
        return (f"max={self.max_writes} mean={self.mean_writes:.1f} "
                f"hottest_row={self.hottest_row} "
                f"endurance_used={self.endurance_fraction:.2e}")


def wear_report(array: CrossbarArray,
                writes_per_conversion: float = 1.0) -> WearReport:
    """Build a wear report from an array's write counters."""
    counts = array._write_counts  # noqa: SLF001 - wear is a friend module
    max_writes = int(counts.max())
    row_totals = counts.sum(axis=1)
    hottest = int(np.argmax(row_totals))
    endurance = array.device.params.write_endurance
    return WearReport(
        max_writes=max_writes,
        mean_writes=float(counts.mean()),
        hottest_row=hottest,
        endurance_fraction=max_writes / endurance,
        # Conversions until the hottest cell reaches rated endurance, at
        # the observed per-conversion write intensity.
        lifetime_conversions=endurance / max(writes_per_conversion, 1e-12),
    )


class RotatingRowAllocator:
    """Round-robin allocator spreading result-row writes across a region.

    Without rotation every conversion writes the same SBS row and that row's
    cells wear ``region_size`` times faster than necessary; with rotation
    the write load is uniform.  ``next_row`` returns the row to use for the
    next write; ``writes_per_row`` exposes the balance for testing.
    """

    def __init__(self, start_row: int, region_size: int):
        if region_size < 1:
            raise ValueError("region_size must be >= 1")
        self.start_row = start_row
        self.region_size = region_size
        self._counter = 0
        self._per_row: Dict[int, int] = {}

    def next_row(self) -> int:
        row = self.start_row + (self._counter % self.region_size)
        self._counter += 1
        self._per_row[row] = self._per_row.get(row, 0) + 1
        return row

    @property
    def total_allocations(self) -> int:
        return self._counter

    def writes_per_row(self) -> Dict[int, int]:
        return dict(self._per_row)

    def imbalance(self) -> float:
        """Max/mean write ratio across the region (1.0 = perfectly even)."""
        if not self._per_row:
            return 1.0
        counts = np.array(list(self._per_row.values()), dtype=np.float64)
        full = np.zeros(self.region_size)
        full[: counts.size] = counts
        mean = full.mean()
        return float(full.max() / mean) if mean > 0 else 1.0
